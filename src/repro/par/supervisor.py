"""Supervised worker pools: liveness, replacement, poison quarantine.

:func:`~repro.par.map_fanout`'s process backend surfaces a dead worker
as :class:`~repro.par.errors.WorkerCrashError` and leaves recovery to
the caller.  The paper's campaigns could not afford that: on Sierra a
node loss mid-ensemble was routine, and the workflow layers were
expected to replace the lost worker and re-run only the lost work.
:class:`Supervisor` is that contract as a library:

- **liveness** — each worker owns a shared heartbeat slot it stamps at
  every task boundary and idle poll; the supervisor SIGKILLs a worker
  whose heartbeat goes stale while a task is in flight (a hang is a
  crash that forgot to die), and notices exits via ``is_alive``.
- **replacement** — a dead worker is respawned automatically with
  capped exponential backoff (``backoff_base * 2**k`` up to
  ``backoff_max``), non-blocking: healthy workers keep draining the
  queue while a replacement waits out its backoff.
- **poison quarantine** — a task index that crashes its worker
  ``max_task_crashes`` times is quarantined: by default the fan-out
  fails fast with :class:`~repro.par.errors.PoisonTaskError`; with
  ``on_poison="quarantine"`` the remaining tasks complete and the
  poisoned slot carries the error object.
- **journal resubmission** — with ``journal=<path>``, every completed
  task is appended to a :class:`~repro.durable.wal.WriteAheadLog`
  (the durability layer's CRC-framed format).  If the *supervisor
  process itself* is killed and re-run, completed indices are replayed
  from the journal and only the in-flight remainder is resubmitted.

Determinism: tasks are dispatched one at a time to idle workers, so
completion order is nondeterministic, but results are reassembled by
input index — for a pure ``fn`` the returned list is bit-identical to
``[fn(x) for x in items]`` regardless of crashes and replacements.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import metrics as _metrics
from repro.par.backend import BACKEND_ENV, _TaskFailure
from repro.par.errors import PoisonTaskError, WorkerTaskError

#: worker-side poll timeout; also the idle heartbeat cadence
_WORKER_POLL = 0.05


def _supervised_worker(worker_id, fn, task_q, result_q, heartbeat):
    """Worker loop: beat, fetch, run, reply.  Top-level (picklable)."""
    import queue as _queue
    import traceback as _traceback

    os.environ[BACKEND_ENV] = "serial"  # never nest pools
    while True:
        heartbeat.value = time.monotonic()
        try:
            msg = task_q.get(timeout=_WORKER_POLL)
        except _queue.Empty:
            continue
        if msg is None:
            break
        index, item = msg
        heartbeat.value = time.monotonic()  # task start: hang clock begins
        try:
            out = (worker_id, index, True, fn(item))
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            out = (worker_id, index, False, _TaskFailure(
                index, type(exc).__name__, str(exc),
                _traceback.format_exc(),
            ))
        result_q.put(out)
        heartbeat.value = time.monotonic()


class _WorkerSlot:
    """Parent-side bookkeeping for one supervised worker position."""

    __slots__ = ("worker_id", "process", "task_q", "heartbeat",
                 "inflight", "respawn_at")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.task_q = None
        self.heartbeat = None
        self.inflight: Optional[int] = None
        self.respawn_at = 0.0


class Supervisor:
    """A self-healing process pool for fan-out workloads.

    ``heartbeat_timeout`` doubles as the per-task hang limit: a worker
    whose in-flight task outlives it is presumed wedged and killed
    (the kill counts as a crash against that task index).  All
    liveness arithmetic runs on ``time.monotonic()`` — on Linux
    CLOCK_MONOTONIC is shared across processes on a host, so worker
    heartbeat stamps and the parent's hang clock stay comparable, and
    an NTP step of the wall clock can neither fake a hang nor mask
    one.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: Optional[int] = None,
        max_task_crashes: int = 3,
        heartbeat_timeout: float = 30.0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.0,
        rng=None,
        on_poison: str = "raise",
        journal=None,
        poll_interval: float = 0.02,
    ):
        if max_task_crashes < 1:
            raise ValueError("max_task_crashes must be >= 1")
        if on_poison not in ("raise", "quarantine"):
            raise ValueError("on_poison must be 'raise' or 'quarantine'")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if backoff_jitter > 0.0 and rng is None:
            # same contract as resilience.retry.ExponentialBackoff:
            # jitter only with an *injected* stream, so chaos-harness
            # runs with supervised pools stay seed-reproducible
            raise ValueError(
                "backoff_jitter requires an injected rng (determinism: "
                "the supervisor owns no hidden randomness)"
            )
        self.fn = fn
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.max_task_crashes = max_task_crashes
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.rng = rng
        self.on_poison = on_poison
        self.journal_path = journal
        self.poll_interval = poll_interval
        # lifetime stats
        self.crashes = 0
        self.replacements = 0
        self.poisoned: List[int] = []
        self.journal_skips = 0
        self._slots: List[_WorkerSlot] = []
        self._ctx = None
        self._result_q = None
        self._consec_crashes = 0
        self._wal = None

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _context(self):
        if self._ctx is None:
            import multiprocessing as mp

            try:
                self._ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                self._ctx = mp.get_context()
        return self._ctx

    def _ensure_started(self) -> None:
        ctx = self._context()
        if self._result_q is None:
            self._result_q = ctx.Queue()
        if not self._slots:
            self._slots = [_WorkerSlot(i) for i in range(self.workers)]
        for slot in self._slots:
            if slot.process is None and time.monotonic() >= slot.respawn_at:
                self._spawn(slot)

    def _spawn(self, slot: _WorkerSlot) -> None:
        ctx = self._context()
        # fresh queue per incarnation: a task queued to the dead worker
        # but never fetched must not reach the replacement (the index
        # is resubmitted through `pending` instead)
        slot.task_q = ctx.Queue()
        slot.heartbeat = ctx.Value("d", time.monotonic())
        slot.process = ctx.Process(
            target=_supervised_worker,
            args=(slot.worker_id, self.fn, slot.task_q, self._result_q,
                  slot.heartbeat),
            daemon=True,
        )
        slot.process.start()
        slot.inflight = None

    def close(self) -> None:
        """Stop every worker (sentinel, then SIGKILL stragglers)."""
        for slot in self._slots:
            if slot.process is not None and slot.task_q is not None:
                try:
                    slot.task_q.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 2.0
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
            slot.process = None
            slot.inflight = None
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def _abort(self) -> None:
        """Kill the pool hard; the next ``map`` restarts it lazily."""
        for slot in self._slots:
            if slot.process is not None:
                slot.process.kill()
                slot.process.join()
                slot.process = None
                slot.inflight = None
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    # -- journal --------------------------------------------------------

    def _journal_wal(self):
        if self.journal_path is None:
            return None
        if self._wal is None:
            from repro.durable.wal import WriteAheadLog

            self._wal = WriteAheadLog(self.journal_path)
        return self._wal

    # -- the supervised fan-out -----------------------------------------

    def map(self, items: Sequence[Any],
            timeout: Optional[float] = None) -> List[Any]:
        """Apply ``fn`` to every item; survive crashes along the way.

        Returns results ordered by input index.  Raises
        :class:`WorkerTaskError` if ``fn`` raised,
        :class:`PoisonTaskError` when a quarantine trips under
        ``on_poison="raise"``.  With ``on_poison="quarantine"`` the
        poisoned slots hold the :class:`PoisonTaskError` instance.
        """
        items = list(items)
        n = len(items)
        if n == 0:
            return []
        self._ensure_started()
        results: Dict[int, Any] = {}
        quarantined: Dict[int, PoisonTaskError] = {}
        crash_counts: Dict[int, int] = {}
        wal = self._journal_wal()
        if wal is not None:
            for payload in wal.replay():
                try:
                    rec = pickle.loads(payload)
                except Exception:
                    continue
                i = rec.get("index")
                if isinstance(i, int) and 0 <= i < n and i not in results:
                    results[i] = rec["value"]
                    self.journal_skips += 1
                    _metrics.counter("par.supervisor.journal_skips").add()
        pending = deque(i for i in range(n) if i not in results)
        deadline_at = None if timeout is None else time.monotonic() + timeout
        try:
            while len(results) + len(quarantined) < n:
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    raise TimeoutError(
                        f"supervised fan-out did not finish within "
                        f"{timeout}s ({len(results)}/{n} done)"
                    )
                progressed = self._drain(results, wal)
                self._dispatch(pending, items, results, quarantined)
                self._police(pending, results, crash_counts, quarantined,
                             wal)
                if not progressed:
                    time.sleep(self.poll_interval)
        except BaseException:
            self._abort()
            raise
        return [results[i] if i in results else quarantined[i]
                for i in range(n)]

    # -- monitor-loop internals -----------------------------------------

    def _drain(self, results, wal) -> bool:
        """Collect every result currently in the queue; True if any."""
        import queue as _queue

        got = False
        while True:
            try:
                worker_id, index, ok, value = self._result_q.get_nowait()
            except _queue.Empty:
                return got
            got = True
            slot = self._slots[worker_id]
            if slot.inflight == index:
                slot.inflight = None
            if not ok:
                f: _TaskFailure = value
                _metrics.counter("par.task_errors").add()
                raise WorkerTaskError(f.index, f.error_type, f.message,
                                      f.worker_traceback)
            if index not in results:
                results[index] = value
                self._consec_crashes = 0
                if wal is not None:
                    wal.append(pickle.dumps(
                        {"index": index, "value": value}
                    ))

    def _backoff_delay(self) -> float:
        """Capped exponential respawn delay, optionally jittered.

        Jitter multiplies by ``1 + backoff_jitter * U(-1, 1)`` drawn
        from the injected ``rng`` — never a hidden module-level stream —
        mirroring :class:`repro.resilience.retry.ExponentialBackoff`.
        """
        delay = min(
            self.backoff_max,
            self.backoff_base * (2 ** max(0, self._consec_crashes - 1)),
        )
        if self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * float(
                self.rng.uniform(-1.0, 1.0)
            )
        return delay

    def _dispatch(self, pending, items, results, quarantined) -> None:
        for slot in self._slots:
            if not pending:
                return
            if slot.process is None or slot.inflight is not None:
                continue
            index = pending.popleft()
            if index in results or index in quarantined:
                continue
            slot.inflight = index
            slot.task_q.put((index, items[index]))

    def _police(self, pending, results, crash_counts, quarantined,
                wal) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if slot.process is None:
                if now >= slot.respawn_at:
                    self._spawn(slot)
                    self.replacements += 1
                    _metrics.counter("par.supervisor.replacements").add()
                continue
            dead = not slot.process.is_alive()
            hung = (not dead and slot.inflight is not None
                    and now - slot.heartbeat.value > self.heartbeat_timeout)
            if not (dead or hung):
                continue
            if hung:
                _metrics.counter("par.supervisor.hangs").add()
                slot.process.kill()
            slot.process.join()
            slot.process = None
            # close the completed-then-died race: the result may have
            # hit the queue before the worker went down
            self._drain(results, wal)
            index = slot.inflight
            slot.inflight = None
            self.crashes += 1
            self._consec_crashes += 1
            _metrics.counter("par.supervisor.crashes").add()
            slot.respawn_at = now + self._backoff_delay()
            if index is None or index in results:
                continue
            crash_counts[index] = crash_counts.get(index, 0) + 1
            if crash_counts[index] >= self.max_task_crashes:
                err = PoisonTaskError(index, crash_counts[index])
                self.poisoned.append(index)
                _metrics.counter("par.supervisor.poisoned").add()
                if self.on_poison == "raise":
                    raise err
                quarantined[index] = err
            else:
                pending.appendleft(index)
