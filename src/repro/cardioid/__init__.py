"""Cardioid proxy: monodomain cardiac electrophysiology (§4.1).

Cardioid computes membrane ion transport (reaction kernels:
embarrassingly parallel, compute-bound, "100-500 calls to math
functions") and ion diffusion (memory-bound stencils "with unique
coefficients used at each point of the continuum").  The iCoE team's
headline optimization was a DSL (Melodee) that "automatically finds and
replaces expensive math functions with rational polynomials ... and
uses an NVIDIA runtime-compilation library to produce high performance
kernels on-demand", with compile-time constant baking worth significant
extra performance.

- :mod:`repro.cardioid.ionmodels` — a Hodgkin-Huxley-style membrane
  model: voltage-dependent rate functions dense with ``exp`` calls,
  Rush-Larsen gate integration.
- :mod:`repro.cardioid.dsl` — the Melodee proxy: rational-polynomial
  fitting of the rate functions over the physiological voltage range,
  code generation with coefficients baked as literals, compilation
  through the mini-NVRTC JIT, and accuracy verification against the
  reference math library.
- :mod:`repro.cardioid.diffusion` — the 7-point variable-coefficient
  diffusion stencil (unique conductivity tensor entries per point).
- :mod:`repro.cardioid.simulation` — operator-split monodomain
  simulation plus the CPU/GPU placement decision model (the §4.1
  lesson: data-transfer cost made "all on the GPU" win even where the
  CPU kernel was competitive).
"""

from repro.cardioid.ionmodels import HodgkinHuxleyModel, RATE_FUNCTIONS
from repro.cardioid.dsl import RationalFit, ReactionKernelGenerator
from repro.cardioid.diffusion import VariableCoefficientDiffusion
from repro.cardioid.simulation import MonodomainSimulation, placement_decision

__all__ = [
    "HodgkinHuxleyModel",
    "RATE_FUNCTIONS",
    "RationalFit",
    "ReactionKernelGenerator",
    "VariableCoefficientDiffusion",
    "MonodomainSimulation",
    "placement_decision",
]
