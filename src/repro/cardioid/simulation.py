"""Operator-split monodomain simulation and the CPU/GPU placement model.

Combines the reaction model and the diffusion stencil with first-order
operator splitting (standard cardiac practice at these step sizes), and
implements §4.1's placement lesson as an explicit decision function:
even when the CPU diffusion kernel is competitive with the GPU one,
moving the voltage field across the link every timestep costs more
than the kernel-time difference — so everything runs on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
from repro.core.machine import Machine
from repro.core.roofline import RooflineModel
from repro.cardioid.diffusion import VariableCoefficientDiffusion
from repro.cardioid.ionmodels import C_M, HodgkinHuxleyModel, RateFn


def placement_decision(
    machine: Machine,
    n_points: int,
    steps_per_second: float = 1.0,
) -> Dict[str, float]:
    """Compare per-step cost of 'diffusion on CPU' vs 'all on GPU'.

    Returns modeled per-step times for both placements and the
    decision.  The CPU placement pays two field transfers per step
    (voltage down, updated voltage back up); the GPU placement pays
    none.  This is the §4.1 analysis in executable form.
    """
    if machine.gpu is None:
        raise ValueError("placement analysis needs a GPU machine")
    model = RooflineModel(machine)
    diffusion = KernelSpec(
        name="diffusion", flops=13.0 * n_points,
        bytes_read=8.0 * 7 * n_points, bytes_written=8.0 * n_points,
        compute_efficiency=0.4, bandwidth_efficiency=0.8,
    )
    t_gpu_kernel = model.gpu_kernel_time(diffusion,
                                         gpus=machine.gpus_per_node)
    t_cpu_kernel = model.cpu_kernel_time(diffusion)
    field_bytes = 8.0 * n_points
    link = machine.host_device_link
    t_transfer = 2 * link.transfer_time(field_bytes)
    all_gpu = t_gpu_kernel + machine.gpu.launch_overhead
    split = t_cpu_kernel + t_transfer
    return {
        "all_gpu_per_step": all_gpu,
        "cpu_diffusion_per_step": split,
        "transfer_per_step": t_transfer,
        "winner": "all_gpu" if all_gpu <= split else "cpu_diffusion",
    }


@dataclass
class MonodomainSimulation:
    """Reaction-diffusion simulation on a 3D tissue block.

    Parameters
    ----------
    shape:
        Tissue grid (nx, ny, nz).
    sigma:
        Conductivity field (defaults to mild heterogeneity around 1).
    dt:
        Time step (ms); reaction and diffusion share it (first-order
        splitting).
    rates:
        Optional DSL-generated rate kernel for the reaction step.
    ctx:
        Execution context for kernel tracing.
    """

    shape: Tuple[int, int, int]
    sigma: Optional[np.ndarray] = None
    dt: float = 0.02
    rates: Optional[RateFn] = None
    ctx: Optional[ExecutionContext] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        nx, ny, nz = self.shape
        n = nx * ny * nz
        if n < 1:
            raise ValueError("empty tissue block")
        if self.sigma is None:
            rng = np.random.default_rng(self.seed)
            self.sigma = 1.0 + 0.2 * rng.random(self.shape)
        self.diffusion = VariableCoefficientDiffusion(self.sigma, ctx=self.ctx)
        self.membrane = HodgkinHuxleyModel(n, rates=self.rates)
        self.t = 0.0
        self.steps_taken = 0

    @property
    def n_points(self) -> int:
        return int(np.prod(self.shape))

    def stimulate_region(self, region: Tuple[slice, slice, slice],
                         current: float) -> np.ndarray:
        """Build a stimulus field with *current* inside *region*."""
        stim = np.zeros(self.shape)
        stim[region] = current
        return stim.ravel()

    def step(self, i_stim: Optional[np.ndarray] = None) -> None:
        # reaction half (records its compute-bound kernel)
        self.membrane.step_reaction(self.dt, i_stim=i_stim)
        if self.ctx is not None:
            n = self.n_points
            self.ctx.trace.record_kernel(KernelSpec(
                name="cardioid-reaction",
                flops=250.0 * n,  # 100-500 math-function calls per cell
                bytes_read=8.0 * 4 * n, bytes_written=8.0 * 4 * n,
                compute_efficiency=0.55, bandwidth_efficiency=0.7,
            ))
        # diffusion half
        v = self.membrane.v.reshape(self.shape)
        dv = self.diffusion.apply(v)
        self.membrane.v = (v + self.dt * dv / C_M).ravel()
        self.t += self.dt
        self.steps_taken += 1

    def run(self, n_steps: int, i_stim: Optional[np.ndarray] = None,
            stim_steps: int = 0) -> None:
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        for k in range(n_steps):
            self.step(i_stim if k < stim_steps else None)

    def activated_fraction(self, threshold: float = 0.0) -> float:
        """Fraction of tissue depolarized above *threshold* mV."""
        return float((self.membrane.v > threshold).mean())
