"""Variable-coefficient diffusion stencil for the monodomain model.

"The diffusion kernels are memory-bound stencil computations on a
structured grid, with unique coefficients used at each point of the
continuum" (§4.1).  Here: a 3D 7-point conservative stencil with
face-centered conductivities (harmonic means of cell conductivities),
so every point carries six unique coefficients — the memory-bound
profile the paper describes, which is also why the CPU and GPU versions
performed comparably.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec


class VariableCoefficientDiffusion:
    """div(sigma grad V) on a 3D box with zero-flux boundaries.

    Parameters
    ----------
    sigma:
        Cell conductivities, shape (nx, ny, nz), strictly positive
        (heterogeneous cardiac tissue).
    h:
        Grid spacing.
    ctx:
        Optional execution context; each apply records its (memory-
        bound) kernel spec.
    """

    def __init__(self, sigma: np.ndarray, h: float = 1.0,
                 ctx: Optional[ExecutionContext] = None):
        sigma = np.asarray(sigma, dtype=np.float64)
        if sigma.ndim != 3:
            raise ValueError("sigma must be 3D")
        if np.any(sigma <= 0):
            raise ValueError("conductivities must be positive")
        if h <= 0:
            raise ValueError("h must be positive")
        self.shape = sigma.shape
        self.h = h
        self.ctx = ctx
        # face conductivities: harmonic means between neighboring cells
        self.cx = self._face_coeff(sigma, 0)  # (nx+1, ny, nz)
        self.cy = self._face_coeff(sigma, 1)
        self.cz = self._face_coeff(sigma, 2)

    @staticmethod
    def _face_coeff(sigma: np.ndarray, axis: int) -> np.ndarray:
        lo = np.moveaxis(sigma, axis, 0)
        harm = 2.0 * lo[:-1] * lo[1:] / (lo[:-1] + lo[1:])
        n = sigma.shape[axis]
        shape = list(sigma.shape)
        shape[axis] = n + 1
        out = np.zeros(shape)
        mv = np.moveaxis(out, axis, 0)
        mv[1:-1] = harm  # boundary faces stay zero: zero-flux (Neumann)
        return out

    @property
    def coefficients_per_point(self) -> int:
        return 6

    def apply(self, v: np.ndarray) -> np.ndarray:
        """out = div(sigma grad v), interior conservative differencing."""
        if v.shape != self.shape:
            raise ValueError("field shape mismatch")
        inv_h2 = 1.0 / (self.h * self.h)
        out = np.zeros_like(v)
        # x fluxes
        dx = np.diff(v, axis=0)
        flux = self.cx[1:-1] * dx
        out[:-1] += flux
        out[1:] -= flux
        # y fluxes
        dy = np.diff(v, axis=1)
        flux = self.cy[:, 1:-1] * dy
        out[:, :-1] += flux
        out[:, 1:] -= flux
        # z fluxes
        dz = np.diff(v, axis=2)
        flux = self.cz[:, :, 1:-1] * dz
        out[:, :, :-1] += flux
        out[:, :, 1:] -= flux
        out *= inv_h2
        if self.ctx is not None:
            n = v.size
            self.ctx.trace.record_kernel(KernelSpec(
                name="cardioid-diffusion",
                flops=13.0 * n,
                # unique coefficients make this stream-everything:
                # v + 6 coeffs read, out written
                bytes_read=8.0 * 7 * n,
                bytes_written=8.0 * n,
                compute_efficiency=0.4,
                bandwidth_efficiency=0.8,
            ))
        return out

    def conservation_defect(self, v: np.ndarray) -> float:
        """Sum of div(sigma grad v): exactly zero for zero-flux BCs."""
        return float(self.apply(v).sum()) * self.h**3
