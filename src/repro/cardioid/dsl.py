"""Melodee proxy: rational-polynomial replacement of expensive rates.

The Cardioid team "found that replacing expensive functions with
run-time rational polynomials was essential for top performance, and
that changing run-time polynomial coefficients into compile-time
constants could yield significant performance" (§4.1).  This module
implements exactly that pipeline for the membrane rate functions:

1. :class:`RationalFit` fits ``p(x)/q(x)`` to a function over an
   interval (linearized least squares on Chebyshev sample points,
   optionally iterated to approach a minimax fit) and reports the
   achieved maximum relative error.
2. :class:`ReactionKernelGenerator` fits every rate function, then
   emits a fused rate kernel as Python source — coefficients either
   fetched from a runtime table (the "run-time coefficients" variant)
   or baked into the source as literals (the "compile-time constants"
   variant) — compiled through :class:`~repro.core.jit.JitCache`.

Polynomials are evaluated with Horner's scheme: the generated kernel
does only multiply-adds, no transcendental calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.jit import JitCache


@dataclass
class RationalFit:
    """Least-squares rational approximation p(x)/q(x) on [a, b].

    ``q`` is normalized with constant term 1.  The fit solves the
    linearized problem ``f(x) q(x) - p(x) ~ 0`` on Chebyshev points,
    with optional Lawson-style reweighting toward the minimax error.
    """

    num_degree: int
    den_degree: int
    domain: Tuple[float, float]
    p_coeffs: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_coeffs: np.ndarray = field(default=None)  # type: ignore[assignment]
    max_rel_error: float = np.inf

    @staticmethod
    def fit(
        fn: Callable[[np.ndarray], np.ndarray],
        domain: Tuple[float, float],
        num_degree: int = 8,
        den_degree: int = 4,
        n_samples: int = 400,
        reweight_iters: int = 3,
    ) -> "RationalFit":
        a, b = domain
        if b <= a:
            raise ValueError("empty fitting domain")
        if num_degree < 0 or den_degree < 0:
            raise ValueError("degrees must be non-negative")
        # Chebyshev sample points avoid Runge artifacts at the ends.
        k = np.arange(n_samples)
        x = 0.5 * (a + b) + 0.5 * (b - a) * np.cos(np.pi * (k + 0.5) / n_samples)
        x = np.sort(x)
        f = np.asarray(fn(x), dtype=np.float64)
        if not np.all(np.isfinite(f)):
            raise ValueError("rate function not finite on the fit domain")
        # scale x to [-1, 1] for conditioning
        xs = (2.0 * x - (a + b)) / (b - a)
        vand_p = np.vander(xs, num_degree + 1, increasing=True)
        vand_q = np.vander(xs, den_degree + 1, increasing=True)[:, 1:]
        weights = np.ones(n_samples)
        scale = np.maximum(np.abs(f), 1e-12)
        p = q = None
        for _ in range(max(1, reweight_iters)):
            w = weights / scale
            lhs = np.hstack([vand_p * w[:, None], -vand_q * (f * w)[:, None]])
            rhs = f * w
            sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
            p = sol[: num_degree + 1]
            q = np.concatenate([[1.0], sol[num_degree + 1:]])
            approx = (vand_p @ p) / (np.vander(xs, den_degree + 1,
                                               increasing=True) @ q)
            err = np.abs(approx - f) / scale
            weights = np.sqrt(weights * np.maximum(err, 1e-15))
            weights /= weights.max()
        fitobj = RationalFit(num_degree, den_degree, domain)
        fitobj.p_coeffs = p
        fitobj.q_coeffs = q
        # validate on a dense independent grid
        xv = np.linspace(a, b, 4 * n_samples)
        fv = np.asarray(fn(xv))
        av = fitobj(xv)
        fitobj.max_rel_error = float(
            np.max(np.abs(av - fv) / np.maximum(np.abs(fv), 1e-12))
        )
        # reject fits whose denominator changes sign in the domain (pole)
        qv = fitobj._q_of(xv)
        if qv.max() > 0 and qv.min() < 0:
            fitobj.max_rel_error = np.inf
        return fitobj

    def _scale(self, x: np.ndarray) -> np.ndarray:
        a, b = self.domain
        return (2.0 * np.asarray(x, dtype=np.float64) - (a + b)) / (b - a)

    def _q_of(self, x: np.ndarray) -> np.ndarray:
        xs = self._scale(x)
        q = np.zeros_like(xs)
        for c in self.q_coeffs[::-1]:
            q = q * xs + c
        return q

    def __call__(self, x: np.ndarray) -> np.ndarray:
        xs = self._scale(x)
        p = np.zeros_like(xs)
        for c in self.p_coeffs[::-1]:
            p = p * xs + c
        return p / self._q_of(x)


_KERNEL_TEMPLATE_BAKED = '''
def rates(v):
    """DSL-generated fused rate kernel (coefficients baked)."""
    xs = (2.0 * v - $AB_SUM) * $AB_INV
$BODY
    return {$RESULT}
'''

_KERNEL_TEMPLATE_RUNTIME = '''
def rates(v, _tables=None):
    """DSL-generated fused rate kernel (runtime coefficient tables)."""
    xs = (2.0 * v - _ab_sum) * _ab_inv
    out = {}
    for name, (p, q) in _coeff_tables.items():
        num = 0.0 * xs
        for c in p[::-1]:
            num = num * xs + c
        den = 0.0 * xs
        for c in q[::-1]:
            den = den * xs + c
        out[name] = num / den
    return out
'''


def _horner_source(var: str, coeffs: np.ndarray, target: str, indent: str
                   ) -> List[str]:
    lines = [f"{indent}{target} = {coeffs[-1]!r}"]
    for c in coeffs[-2::-1]:
        lines.append(f"{indent}{target} = {target} * {var} + {c!r}")
    return lines


class ReactionKernelGenerator:
    """Fit all rate functions and generate fused kernels.

    Parameters
    ----------
    rate_functions:
        name -> callable over voltage.
    domain:
        Fitting interval (the physiological voltage range).
    tolerance:
        Required max relative error per rate; degrees escalate until
        met (or :class:`ValueError` if the budget is exhausted).
    """

    def __init__(
        self,
        rate_functions: Dict[str, Callable[[np.ndarray], np.ndarray]],
        domain: Tuple[float, float],
        tolerance: float = 1e-6,
        max_degree: int = 14,
    ):
        if not rate_functions:
            raise ValueError("no rate functions given")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.domain = domain
        self.tolerance = tolerance
        self.fits: Dict[str, RationalFit] = {}
        for name, fn in rate_functions.items():
            self.fits[name] = self._fit_to_tolerance(fn, max_degree)
        self.jit = JitCache(globals_ns={"np": np})

    def _fit_to_tolerance(self, fn, max_degree: int) -> RationalFit:
        best: Optional[RationalFit] = None
        for num_deg in range(4, max_degree + 1, 2):
            for den_deg in (2, 4, 6):
                fit = RationalFit.fit(fn, self.domain, num_deg, den_deg)
                if best is None or fit.max_rel_error < best.max_rel_error:
                    best = fit
                if best.max_rel_error <= self.tolerance:
                    return best
        assert best is not None
        if best.max_rel_error > self.tolerance:
            raise ValueError(
                f"could not reach tolerance {self.tolerance}; best "
                f"achieved {best.max_rel_error:.3g}"
            )
        return best

    # ------------------------------------------------------------------

    def worst_fit_error(self) -> float:
        return max(f.max_rel_error for f in self.fits.values())

    def generate_baked(self) -> Callable[[np.ndarray], Dict[str, np.ndarray]]:
        """Kernel with all coefficients baked as source literals —
        the compile-time-constants variant."""
        a, b = self.domain
        body_lines: List[str] = []
        for name, fit in self.fits.items():
            body_lines.extend(
                _horner_source("xs", fit.p_coeffs, f"p_{name}", "    ")
            )
            body_lines.extend(
                _horner_source("xs", fit.q_coeffs, f"q_{name}", "    ")
            )
        result = ", ".join(
            f"'{name}': p_{name} / q_{name}" for name in self.fits
        )
        # The body is large and position-dependent; render directly
        # (every coefficient lands in the source as a literal).
        source = _KERNEL_TEMPLATE_BAKED
        source = source.replace("$AB_SUM", repr(float(a + b)))
        source = source.replace("$AB_INV", repr(float(1.0 / (b - a))))
        source = source.replace("$BODY", "\n".join(body_lines))
        source = source.replace("$RESULT", result)
        compiled = self.jit.compile("rates", source, constants={})
        return compiled.fn

    def generate_runtime(self) -> Callable[[np.ndarray], Dict[str, np.ndarray]]:
        """Kernel reading coefficients from runtime tables — the
        variant the baked kernel is measured against."""
        a, b = self.domain
        tables = {
            name: (fit.p_coeffs.copy(), fit.q_coeffs.copy())
            for name, fit in self.fits.items()
        }
        ns = {
            "_coeff_tables": tables,
            "_ab_sum": float(a + b),
            "_ab_inv": float(1.0 / (b - a)),
            "np": np,
        }
        compiled = self.jit.compile(
            "rates", _KERNEL_TEMPLATE_RUNTIME, constants={}, extra_globals=ns
        )
        return compiled.fn
