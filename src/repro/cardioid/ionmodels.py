"""Hodgkin-Huxley-style membrane model: the reaction kernel workload.

The classic HH squid-axon model stands in for Cardioid's human ion
models (TT06 and friends): the structure is identical — a voltage
equation plus gating variables whose voltage-dependent opening/closing
rates are built from exponential functions — and the computational
profile matches the paper's description (each cell update evaluates
many ``exp`` calls; the work is embarrassingly parallel across cells).

Rates are exposed individually in :data:`RATE_FUNCTIONS` so the DSL can
fit and replace each one.  Gates advance with the Rush-Larsen scheme
(exact exponential integration of the linear gate ODEs), the standard
cardiac practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.guard.sentinels import default_monitor

# membrane parameters (classic HH, mV / ms / mS units)
G_NA, G_K, G_L = 120.0, 36.0, 0.3
E_NA, E_K, E_L = 50.0, -77.0, -54.387
C_M = 1.0

#: physiological voltage range the DSL fits over (mV)
V_RANGE = (-90.0, 60.0)


def _safe_expm1_ratio(x: np.ndarray) -> np.ndarray:
    """x / (exp(x) - 1), continuous at x = 0 (value -> 1)."""
    x = np.asarray(x, dtype=np.float64)
    small = np.abs(x) < 1e-7
    safe_x = np.where(small, 1.0, x)  # avoid 0/0 in the masked branch
    return np.where(small, 1.0 - x / 2.0, safe_x / np.expm1(safe_x))


def alpha_m(v):
    return 1.0 * _safe_expm1_ratio(-(v + 40.0) / 10.0)


def beta_m(v):
    return 4.0 * np.exp(-(np.asarray(v) + 65.0) / 18.0)


def alpha_h(v):
    return 0.07 * np.exp(-(np.asarray(v) + 65.0) / 20.0)


def beta_h(v):
    return 1.0 / (1.0 + np.exp(-(np.asarray(v) + 35.0) / 10.0))


def alpha_n(v):
    return 0.1 * _safe_expm1_ratio(-(v + 55.0) / 10.0)


def beta_n(v):
    return 0.125 * np.exp(-(np.asarray(v) + 65.0) / 80.0)


#: name -> rate function over membrane voltage; the DSL's input set
RATE_FUNCTIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "alpha_m": alpha_m,
    "beta_m": beta_m,
    "alpha_h": alpha_h,
    "beta_h": beta_h,
    "alpha_n": alpha_n,
    "beta_n": beta_n,
}

RateFn = Callable[[np.ndarray], Dict[str, np.ndarray]]


def reference_rates(v: np.ndarray) -> Dict[str, np.ndarray]:
    """All six rates via the math library (the un-optimized kernel)."""
    return {name: fn(v) for name, fn in RATE_FUNCTIONS.items()}


@dataclass
class HodgkinHuxleyModel:
    """Vectorized membrane model over ``n_cells`` cells.

    ``rates`` is pluggable: the reference implementation or a
    DSL-generated kernel with identical signature.
    """

    n_cells: int
    rates: RateFn = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("need at least one cell")
        if self.rates is None:
            self.rates = reference_rates
        self.v = np.full(self.n_cells, -65.0)
        m0, h0, n0 = self.steady_gates(-65.0)
        self.m = np.full(self.n_cells, m0)
        self.h = np.full(self.n_cells, h0)
        self.n = np.full(self.n_cells, n0)

    @staticmethod
    def steady_gates(v: float) -> Tuple[float, float, float]:
        """Gate steady states at voltage *v* (initialization)."""
        am, bm = float(alpha_m(v)), float(beta_m(v))
        ah, bh = float(alpha_h(v)), float(beta_h(v))
        an, bn = float(alpha_n(v)), float(beta_n(v))
        return am / (am + bm), ah / (ah + bh), an / (an + bn)

    def ionic_current(self) -> np.ndarray:
        """Total membrane ionic current at the present state (uA/cm^2)."""
        i_na = G_NA * self.m**3 * self.h * (self.v - E_NA)
        i_k = G_K * self.n**4 * (self.v - E_K)
        i_l = G_L * (self.v - E_L)
        return i_na + i_k + i_l

    def step_reaction(self, dt: float, i_stim: Optional[np.ndarray] = None
                      ) -> None:
        """Advance gates (Rush-Larsen) and voltage (forward Euler)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        r = self.rates(self.v)
        for gate, a_name, b_name in (
            ("m", "alpha_m", "beta_m"),
            ("h", "alpha_h", "beta_h"),
            ("n", "alpha_n", "beta_n"),
        ):
            a, b = r[a_name], r[b_name]
            tau = 1.0 / (a + b)
            inf = a * tau
            g = getattr(self, gate)
            setattr(self, gate, inf + (g - inf) * np.exp(-dt / tau))
        i_ion = self.ionic_current()
        stim = i_stim if i_stim is not None else 0.0
        self.v = self.v + dt * (stim - i_ion) / C_M
        # a membrane voltage far outside the physiological range means
        # the forward-Euler voltage update has gone unstable (dt too
        # large for the stiff upstroke) or a rate kernel emitted garbage
        mon = default_monitor("cardioid.ionmodel", magnitude_bound=500.0)
        if mon is not None:
            mon.check_array(self.v, "membrane voltage",
                            context={"dt": dt})

    def state(self) -> np.ndarray:
        """Packed state matrix (n_cells, 4): columns V, m, h, n."""
        return np.stack([self.v, self.m, self.h, self.n], axis=1)
