"""repro — reproduction of the SC '19 iCoE workload-preparation paper.

The package implements, in pure Python/NumPy, the diverse workload that
"Preparation and Optimization of a Diverse Workload for a Large-Scale
Heterogeneous System" (Karlin et al., SC '19) prepared for Sierra:
proxy applications for every activity in the paper's Table 1, the
portability substrates they used (mini-RAJA, mini-Umpire, JIT codegen),
and a calibrated analytic performance model of the machines involved.

Start with :mod:`repro.core` for the machine/performance substrate and
:mod:`repro.workload` for the queryable activity inventory; each
activity lives in its own subpackage (see DESIGN.md for the map from
paper section to module).
"""

__version__ = "1.0.0"

from repro import core, util

__all__ = ["core", "util", "__version__"]
