"""Table 1 as a first-class object: the iCoE activity inventory.

The paper's Table 1 enumerates the completed activities, their science
areas, base languages, and programming approaches (with the final
approaches highlighted).  Encoding the table here makes the "diverse
workload" queryable — tests and examples use it to iterate over the
whole workload and to assert diversity properties the paper claims
(multiple base languages, performance-profile classes, model mixes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple


class ProgrammingModel(enum.Enum):
    DSL = "DSL"
    OPENMP = "OpenMP"
    OPENACC = "OpenACC"
    CUDA = "CUDA"
    RAJA = "RAJA"
    KOKKOS = "Kokkos"
    OCCA = "OCCA"
    PYTORCH = "Accelerated PyTorch"
    SPARK = "Spark"
    SCHED_SIM = "Job scheduler simulator"


class PerfProfile(enum.Enum):
    """Performance-profile classes called out in §2."""

    FEW_HOT_KERNELS = "few hot kernels"
    FLAT = "nearly flat profile"
    MIXED = "mixed"


@dataclass(frozen=True)
class Activity:
    """One row of Table 1, plus §2 metadata."""

    name: str
    science_area: str
    base_languages: Tuple[str, ...]
    #: every approach the team explored
    approaches: FrozenSet[ProgrammingModel]
    #: the final approaches (bold in Table 1)
    final_approaches: FrozenSet[ProgrammingModel]
    perf_profile: PerfProfile
    #: module in this package implementing the proxy
    module: str
    #: was the application already running at large scale pre-iCoE (italics)
    pre_existing_at_scale: bool = True

    def __post_init__(self) -> None:
        if not self.final_approaches <= self.approaches:
            raise ValueError(
                f"{self.name}: final approaches must be a subset of explored"
            )


def _models(*names: ProgrammingModel) -> FrozenSet[ProgrammingModel]:
    return frozenset(names)


PM = ProgrammingModel

ACTIVITIES: Dict[str, Activity] = {
    a.name: a
    for a in [
        Activity(
            name="Cardioid",
            science_area="Heart Modeling",
            base_languages=("C++",),
            approaches=_models(PM.DSL, PM.OPENMP, PM.CUDA, PM.RAJA),
            final_approaches=_models(PM.DSL, PM.CUDA),
            perf_profile=PerfProfile.FEW_HOT_KERNELS,
            module="repro.cardioid",
        ),
        Activity(
            name="Cretin",
            science_area="Non-LTE Atomic Kinetics",
            base_languages=("Fortran",),
            approaches=_models(PM.OPENACC, PM.CUDA),
            final_approaches=_models(PM.OPENACC, PM.CUDA),
            perf_profile=PerfProfile.MIXED,
            module="repro.kinetics",
        ),
        Activity(
            name="ParaDyn",
            science_area="Dislocation Dynamics",
            base_languages=("Fortran",),
            approaches=_models(PM.OPENMP, PM.OPENACC),
            final_approaches=_models(PM.OPENMP),
            perf_profile=PerfProfile.FLAT,
            module="repro.paradyn",
        ),
        Activity(
            name="Molecular Dynamics",
            science_area="Molecular Dynamics",
            base_languages=("C",),
            approaches=_models(PM.CUDA),
            final_approaches=_models(PM.CUDA),
            perf_profile=PerfProfile.FEW_HOT_KERNELS,
            module="repro.md",
        ),
        Activity(
            name="Seismic (SW4)",
            science_area="Earthquakes",
            base_languages=("Fortran ported to C++",),
            approaches=_models(PM.RAJA, PM.CUDA, PM.OPENMP),
            final_approaches=_models(PM.RAJA, PM.CUDA),
            perf_profile=PerfProfile.MIXED,
            module="repro.stencil",
        ),
        Activity(
            name="Virtual Beamline (VBL)",
            science_area="Laser Propagation",
            base_languages=("C++",),
            approaches=_models(PM.RAJA, PM.CUDA),
            final_approaches=_models(PM.RAJA),
            perf_profile=PerfProfile.MIXED,
            module="repro.vbl",
        ),
        Activity(
            name="Tools and Libraries",
            science_area="Math Frameworks",
            base_languages=("C", "C++"),
            approaches=_models(
                PM.DSL, PM.RAJA, PM.KOKKOS, PM.OCCA, PM.OPENMP, PM.CUDA
            ),
            final_approaches=_models(PM.DSL, PM.RAJA, PM.OPENMP, PM.CUDA),
            perf_profile=PerfProfile.MIXED,
            module="repro.solvers",
        ),
        Activity(
            name="Data Science",
            science_area="DL and Data Analytics",
            base_languages=("PyTorch", "Spark", "C++"),
            approaches=_models(PM.PYTORCH, PM.SPARK),
            final_approaches=_models(PM.PYTORCH, PM.SPARK),
            perf_profile=PerfProfile.MIXED,
            module="repro.dtrain",
            pre_existing_at_scale=False,
        ),
        Activity(
            name="Optimization Framework",
            science_area="Design Optimization",
            base_languages=("C++",),
            approaches=_models(PM.CUDA, PM.SCHED_SIM, PM.RAJA),
            final_approaches=_models(PM.CUDA, PM.SCHED_SIM),
            perf_profile=PerfProfile.FEW_HOT_KERNELS,
            module="repro.topopt",
            pre_existing_at_scale=False,
        ),
    ]
}


def inventory() -> List[Activity]:
    """All completed activities, in Table 1 order."""
    return list(ACTIVITIES.values())


def by_profile(profile: PerfProfile) -> List[Activity]:
    return [a for a in inventory() if a.perf_profile is profile]


def models_in_use() -> FrozenSet[ProgrammingModel]:
    """Union of final programming approaches across the workload."""
    out: FrozenSet[ProgrammingModel] = frozenset()
    for a in inventory():
        out |= a.final_approaches
    return out
