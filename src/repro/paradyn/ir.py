"""Executable elementwise loop IR.

Programs are sequences of loops over a shared trip count; loop bodies
are assignments of elementwise expressions over named arrays.  The IR
deliberately has no cross-iteration dependencies (statements only
touch index ``i``), which makes every loop trivially parallel — the
property the SLNSP pattern exploits.

Expressions are tiny tuples (no classes-per-node ceremony):

    ref("a")                      a[i]
    const(2.0)                    2.0
    bin_op("*", ref("a"), ...)    elementwise arithmetic
    unary("sqrt", ref("a"))       elementwise functions
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

Expr = tuple

_BIN_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "max": np.maximum,
    "min": np.minimum,
}
_UNARY_OPS = {
    "sqrt": np.sqrt,
    "abs": np.abs,
    "neg": np.negative,
    "exp": np.exp,
}


def ref(name: str) -> Expr:
    return ("ref", name)


def const(value: float) -> Expr:
    return ("const", float(value))


def bin_op(op: str, a: Expr, b: Expr) -> Expr:
    if op not in _BIN_OPS:
        raise ValueError(f"unknown binary op {op!r}")
    return ("bin", op, a, b)


def unary(op: str, a: Expr) -> Expr:
    if op not in _UNARY_OPS:
        raise ValueError(f"unknown unary op {op!r}")
    return ("un", op, a)


def expr_refs(e: Expr) -> List[str]:
    """Array names read by expression *e*, in evaluation order."""
    kind = e[0]
    if kind == "ref":
        return [e[1]]
    if kind == "const":
        return []
    if kind == "bin":
        return expr_refs(e[2]) + expr_refs(e[3])
    if kind == "un":
        return expr_refs(e[2])
    raise ValueError(f"bad expression node {e!r}")


def _eval(e: Expr, env: Dict[str, np.ndarray], n: int) -> np.ndarray:
    kind = e[0]
    if kind == "ref":
        return env[e[1]]
    if kind == "const":
        return np.full(n, e[1])
    if kind == "bin":
        return _BIN_OPS[e[1]](_eval(e[2], env, n), _eval(e[3], env, n))
    if kind == "un":
        return _UNARY_OPS[e[1]](_eval(e[2], env, n))
    raise ValueError(f"bad expression node {e!r}")


@dataclass(frozen=True)
class Assign:
    """``target[i] = expr``."""

    target: str
    expr: Expr

    def reads(self) -> List[str]:
        return expr_refs(self.expr)


@dataclass(frozen=True)
class Loop:
    """One parallel loop: a straight-line body of assignments."""

    name: str
    body: Tuple[Assign, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError(f"loop {self.name!r} has an empty body")

    def reads(self) -> Set[str]:
        out: Set[str] = set()
        for stmt in self.body:
            out.update(stmt.reads())
        return out

    def writes(self) -> Set[str]:
        return {stmt.target for stmt in self.body}


@dataclass
class Program:
    """A straight-line sequence of loops over a common trip count.

    ``array_kinds`` classifies every array: ``"input"`` (live-in),
    ``"output"`` (live-out), or ``"temp"`` (private to the program —
    the information OpenMP private clauses carry, which the paper's
    compiler work propagates into dataflow analysis).
    """

    n: int
    array_kinds: Dict[str, str]
    loops: List[Loop] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("trip count must be >= 1")
        for name, kind in self.array_kinds.items():
            if kind not in ("input", "output", "temp"):
                raise ValueError(f"array {name!r} has bad kind {kind!r}")
        used: Set[str] = set()
        for loop in self.loops:
            used |= loop.reads() | loop.writes()
        missing = used - set(self.array_kinds)
        if missing:
            raise ValueError(f"arrays not declared: {sorted(missing)}")
        # inputs must not be written
        for loop in self.loops:
            for w in loop.writes():
                if self.array_kinds[w] == "input":
                    raise ValueError(f"program writes input array {w!r}")

    # ------------------------------------------------------------------

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute; returns all output arrays."""
        env: Dict[str, np.ndarray] = {}
        for name, kind in self.array_kinds.items():
            if kind == "input":
                if name not in inputs:
                    raise KeyError(f"missing input array {name!r}")
                arr = np.asarray(inputs[name], dtype=np.float64)
                if arr.shape != (self.n,):
                    raise ValueError(
                        f"input {name!r} must have shape ({self.n},)"
                    )
                env[name] = arr
            else:
                env[name] = np.zeros(self.n)
        for loop in self.loops:
            for stmt in loop.body:
                env[stmt.target] = _eval(stmt.expr, env, self.n)
        return {
            name: env[name]
            for name, kind in self.array_kinds.items()
            if kind == "output"
        }

    def outputs(self) -> List[str]:
        return sorted(
            n for n, k in self.array_kinds.items() if k == "output"
        )

    @property
    def n_loops(self) -> int:
        return len(self.loops)

    @property
    def n_statements(self) -> int:
        return sum(len(l.body) for l in self.loops)
