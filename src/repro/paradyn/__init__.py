"""ParaDyn proxy: optimization-aware parallelization of many small loops (§4.8).

ParaDyn "contains many small loops" with a nearly flat profile; its GPU
port merged loops to cut launch overhead and intermediate traffic, but
that hurt CPU cache residency, so the team built *compiler* support
instead: a Single Level No Synchronization Parallelism (SLNSP) pattern
("each thread executes exactly one iteration of each loop without any
added synchronization.  Therefore, traditional data flow based
optimization can work across different loops without explicit loop
fusion") plus private-clause propagation enabling dead-store
elimination.  Fig 6 shows SLNSP ~2X (matching the load reduction) and
DSE a further ~20%.

This package implements that pipeline over an *executable* loop IR:

- :mod:`repro.paradyn.ir` — elementwise loop nests over named arrays
  (expressions, statements, loops, programs) with NumPy execution.
- :mod:`repro.paradyn.passes` — ``merge_loops`` (explicit fusion),
  ``slnsp`` (cross-loop dataflow without restructuring), and
  ``dead_store_elimination`` (driven by private/temp classification).
- :mod:`repro.paradyn.counters` — global load/store counting under a
  register-reuse model, and the memory-bound time model that converts
  the counts into Fig 6's bars.
- :mod:`repro.paradyn.kernels` — the ParaDyn-like test kernel (a chain
  of small loops with intermediate temporaries).

Every pass is verified to preserve program output bitwise.
"""

from repro.paradyn.ir import Assign, Loop, Program, bin_op, const, ref, unary
from repro.paradyn.passes import (
    dead_store_elimination,
    merge_loops,
    slnsp,
)
from repro.paradyn.counters import MemoryOps, count_memory_ops, modeled_time
from repro.paradyn.kernels import paradyn_kernel

__all__ = [
    "Program",
    "Loop",
    "Assign",
    "ref",
    "const",
    "bin_op",
    "unary",
    "merge_loops",
    "slnsp",
    "dead_store_elimination",
    "MemoryOps",
    "count_memory_ops",
    "modeled_time",
    "paradyn_kernel",
]
