"""Global load/store counting and the Fig 6 time model.

The counter model mirrors what NVProf measured in the paper: global
memory operations per loop iteration under a register-liveness model.

Within one synchronization scope (a single loop, or the whole program
under SLNSP), an array value that has already been loaded or computed
this iteration is register-resident: re-reading it costs nothing, and
a store that is later re-read from registers costs only the store.
At scope boundaries registers die: every live value must have been
stored, and the next scope must re-load what it reads.

Time model: the ParaDyn kernels are memory-bound, so modeled GPU time
is proportional to (loads + stores) per iteration times trip count
over effective bandwidth, plus one launch per loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.core.machine import Machine
from repro.paradyn.ir import Program


@dataclass(frozen=True)
class MemoryOps:
    """Per-iteration global memory operations."""

    loads: int
    stores: int

    @property
    def total(self) -> int:
        return self.loads + self.stores


def count_memory_ops(program: Program) -> MemoryOps:
    """Count per-iteration global loads/stores under register reuse.

    Honors ``slnsp_region`` (set by the SLNSP pass): with it, register
    liveness spans all loops; without it, each loop starts cold.
    Stores to ``temp`` arrays that are never read outside the current
    register scope still count (the hardware does not know they are
    dead) — removing them is DSE's job.
    """
    whole_region = getattr(program, "slnsp_region", False)
    loads = 0
    stores = 0
    registers: Set[str] = set()
    for loop in program.loops:
        if not whole_region:
            registers = set()
        for stmt in loop.body:
            for name in stmt.reads():
                if name not in registers:
                    loads += 1
                    registers.add(name)
            stores += 1
            registers.add(stmt.target)
    return MemoryOps(loads=loads, stores=stores)


def modeled_time(
    machine: Machine,
    program: Program,
    bandwidth_efficiency: float = 0.7,
) -> float:
    """Modeled GPU execution time of the program (memory-bound)."""
    if machine.gpu is None:
        raise ValueError("modeled_time prices the GPU port")
    if not (0 < bandwidth_efficiency <= 1):
        raise ValueError("bandwidth_efficiency in (0, 1]")
    ops = count_memory_ops(program)
    nbytes = 8.0 * ops.total * program.n
    t_mem = nbytes / (machine.gpu.mem_bw * bandwidth_efficiency)
    t_launch = program.n_loops * machine.gpu.launch_overhead
    return t_mem + t_launch


def report(program: Program, label: str) -> Dict[str, float]:
    ops = count_memory_ops(program)
    return {
        "label": label,
        "loops": program.n_loops,
        "statements": program.n_statements,
        "loads_per_iter": ops.loads,
        "stores_per_iter": ops.stores,
    }
