"""The ParaDyn-like test kernel used in the Fig 6 reproduction.

A chain of eleven small elementwise loops shaped like a dislocation-
dynamics segment update: pairwise input combinations, a chain of
intermediate temporaries threaded from loop to loop, two live outputs,
and three debug/scratch stores that nothing ever reads (the dead
stores the private-clause dataflow eliminates).

The structure is chosen so the counter model reproduces the paper's
measured shape: SLNSP halves total memory operations (~2X time), and
dead-store elimination removes a further ~20%.
"""

from __future__ import annotations

from repro.paradyn.ir import Assign, Loop, Program, bin_op, const, ref, unary


def paradyn_kernel(n: int = 100_000) -> Program:
    """Build the multi-loop ParaDyn proxy kernel over trip count *n*."""
    arrays = {
        # segment geometry / material inputs
        "a": "input", "b": "input", "c": "input",
        "d": "input", "e": "input", "f": "input",
        # live outputs: nodal force and energy-like accumulations
        "out_force": "output", "out_energy": "output",
        # temporaries (OpenMP-private in the original)
        "t1": "temp", "t2": "temp", "t3": "temp", "t4": "temp",
        "t5": "temp", "s1": "temp",
        "dbg1": "temp", "dbg2": "temp", "dbg3": "temp",
    }
    loops = [
        Loop("burgers", (Assign("t1", bin_op("*", ref("a"), ref("b"))),)),
        Loop("linedir", (Assign("t2", bin_op("+", ref("c"), ref("d"))),)),
        Loop("interact", (Assign("t3", bin_op("*", ref("t1"), ref("t2"))),)),
        Loop("core", (Assign("t4", bin_op("+", ref("t3"), ref("e"))),)),
        Loop("debug-core", (Assign("dbg1", bin_op("*", ref("t4"), ref("a"))),)),
        Loop("mobility", (Assign("t5", bin_op("*", ref("t4"), ref("f"))),)),
        Loop("stress", (Assign("s1", bin_op("+", ref("t5"), ref("t3"))),)),
        Loop("force", (Assign("out_force", bin_op("*", ref("s1"), ref("b"))),)),
        Loop("debug-stress", (Assign("dbg2", bin_op("-", ref("s1"), ref("c"))),)),
        Loop("energy", (Assign("out_energy", bin_op("+", ref("s1"), ref("t5"))),)),
        Loop("debug-line", (Assign("dbg3", bin_op("*", ref("t2"), ref("e"))),)),
    ]
    return Program(n=n, array_kinds=arrays, loops=loops)
