"""Optimization passes over the loop IR.

All passes are semantics-preserving for program *outputs* (verified by
the test suite against bitwise-identical results):

- :func:`merge_loops` — explicit loop fusion: concatenate adjacent
  loop bodies.  Always legal in this IR (elementwise, no
  cross-iteration dependencies) — the manual optimization that hurt
  CPU performance in §4.8.
- :func:`slnsp` — the compiler alternative: leave the loop structure
  intact but mark the program so the dataflow model (and the counter
  model) may treat the whole loop sequence as one synchronization-free
  region per iteration.  Statement order is untouched.
- :func:`dead_store_elimination` — remove assignments whose value is
  never observed: stores to ``temp`` arrays that are overwritten
  before any read or never read again.  Requires the private/temp
  classification (the OpenMP private-clause information).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Set, Tuple

from repro.paradyn.ir import Assign, Loop, Program


def merge_loops(program: Program, group_size: int = 0) -> Program:
    """Fuse loops into groups of *group_size* (0 = fuse everything)."""
    if group_size < 0:
        raise ValueError("group_size must be >= 0")
    loops = program.loops
    if not loops:
        return program
    size = group_size if group_size > 0 else len(loops)
    merged: List[Loop] = []
    for k in range(0, len(loops), size):
        group = loops[k:k + size]
        body: Tuple[Assign, ...] = tuple(
            stmt for loop in group for stmt in loop.body
        )
        merged.append(Loop(name="+".join(l.name for l in group), body=body))
    return Program(
        n=program.n, array_kinds=dict(program.array_kinds), loops=merged
    )


def slnsp(program: Program) -> Program:
    """Mark the program as a single-level no-synchronization region.

    The loop structure (and therefore cache behaviour on CPUs and
    launch granularity reporting) is preserved; the returned program
    carries ``slnsp_region = True``, which the memory-op counter model
    interprets as register liveness across loop boundaries — exactly
    the cross-loop dataflow the compiler extension enables.
    """
    out = Program(
        n=program.n, array_kinds=dict(program.array_kinds),
        loops=list(program.loops),
    )
    out.slnsp_region = True  # type: ignore[attr-defined]
    return out


def dead_store_elimination(program: Program) -> Program:
    """Remove dead stores to temp arrays.

    A store is dead when the stored array is a ``temp`` and, in the
    remainder of the program (statement order across all loops), it is
    overwritten before being read or never read at all.
    """
    flat: List[Tuple[int, int, Assign]] = []
    for li, loop in enumerate(program.loops):
        for si, stmt in enumerate(loop.body):
            flat.append((li, si, stmt))

    dead: Set[Tuple[int, int]] = set()
    for idx, (li, si, stmt) in enumerate(flat):
        if program.array_kinds[stmt.target] != "temp":
            continue
        is_dead = True
        for _, _, later in flat[idx + 1:]:
            if stmt.target in later.reads():
                is_dead = False
                break
            if later.target == stmt.target:
                break  # overwritten before any read
        if is_dead:
            dead.add((li, si))

    new_loops: List[Loop] = []
    for li, loop in enumerate(program.loops):
        body = tuple(
            stmt for si, stmt in enumerate(loop.body)
            if (li, si) not in dead
        )
        if body:
            new_loops.append(Loop(name=loop.name, body=body))
    out = Program(
        n=program.n, array_kinds=dict(program.array_kinds), loops=new_loops
    )
    if getattr(program, "slnsp_region", False):
        out.slnsp_region = True  # type: ignore[attr-defined]
    return out
