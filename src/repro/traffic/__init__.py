"""Open-loop traffic generation, trace record/replay, and drivers.

The paper's workload is *offered*: thousands of users submit to a
shared machine whether or not it is keeping up.  This package
synthesizes that regime — arrival processes
(:class:`~repro.traffic.arrivals.PoissonArrivals`,
:class:`~repro.traffic.arrivals.MMPPArrivals`,
:class:`~repro.traffic.arrivals.DiurnalArrivals`) over a lazily
materialized :class:`~repro.traffic.population.UserPopulation` — and
makes every experiment a recorded artifact: a
:class:`~repro.traffic.trace.TrafficTrace` (JSONL in WAL framing)
whose header carries the complete generator + driver configuration,
so any run replays bit-exactly via
:func:`~repro.traffic.driver.replay_experiment`.

Round 2 adds the live side: :class:`~repro.traffic.capture.CaptureTap`
streams jobs/decisions out of an in-flight run into a WAL-framed
trace incrementally and seals the run's fingerprint as a trailer
(:func:`~repro.traffic.capture.capture_experiment`);
``ArrivalProcess.stream()`` + ``UserPopulation.stream_jobs()`` feed
horizon-bounded sessions without ever materializing the job list,
bit-exact with the materialized path; and
:func:`~repro.traffic.ab.ab_replay` replays one trace against N
variant machine/policy configs, checks the identical-config replay
against the sealed fingerprint, and emits a structured diff report.
"""

from repro.traffic.ab import ABReport, ABVariant, ab_replay
from repro.traffic.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    process_from_description,
)
from repro.traffic.driver import (
    AdmissionSpec,
    ChaosSpec,
    OpenLoopDriver,
    TrafficReport,
    drive_campaign,
    generate_jobs,
    record_experiment,
    replay_experiment,
    verify_replay,
)
from repro.traffic.capture import CaptureTap, capture_experiment
from repro.traffic.population import UserPopulation, UserProfile
from repro.traffic.trace import TraceWriter, TrafficTrace

__all__ = [
    "ABReport",
    "ABVariant",
    "CaptureTap",
    "TraceWriter",
    "ab_replay",
    "capture_experiment",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "process_from_description",
    "UserPopulation",
    "UserProfile",
    "TrafficTrace",
    "OpenLoopDriver",
    "TrafficReport",
    "AdmissionSpec",
    "ChaosSpec",
    "generate_jobs",
    "record_experiment",
    "replay_experiment",
    "verify_replay",
    "drive_campaign",
]
