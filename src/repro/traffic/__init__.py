"""Open-loop traffic generation, trace record/replay, and drivers.

The paper's workload is *offered*: thousands of users submit to a
shared machine whether or not it is keeping up.  This package
synthesizes that regime — arrival processes
(:class:`~repro.traffic.arrivals.PoissonArrivals`,
:class:`~repro.traffic.arrivals.MMPPArrivals`,
:class:`~repro.traffic.arrivals.DiurnalArrivals`) over a lazily
materialized :class:`~repro.traffic.population.UserPopulation` — and
makes every experiment a recorded artifact: a
:class:`~repro.traffic.trace.TrafficTrace` (JSONL in WAL framing)
whose header carries the complete generator + driver configuration,
so any run replays bit-exactly via
:func:`~repro.traffic.driver.replay_experiment`.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    process_from_description,
)
from repro.traffic.driver import (
    AdmissionSpec,
    ChaosSpec,
    OpenLoopDriver,
    TrafficReport,
    drive_campaign,
    generate_jobs,
    record_experiment,
    replay_experiment,
    verify_replay,
)
from repro.traffic.population import UserPopulation, UserProfile
from repro.traffic.trace import TrafficTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "process_from_description",
    "UserPopulation",
    "UserProfile",
    "TrafficTrace",
    "OpenLoopDriver",
    "TrafficReport",
    "AdmissionSpec",
    "ChaosSpec",
    "generate_jobs",
    "record_experiment",
    "replay_experiment",
    "verify_replay",
    "drive_campaign",
]
