"""A/B differential replay: one trace, N machine/policy configs.

The paper's Fig-8-style analysis compares the *same* offered workload
across system configurations; until now a recorded trace could only
be replayed against the config that produced it.  :func:`ab_replay`
takes one trace and a list of variant driver descriptions and
answers two questions:

1. **Is the replay contract intact?**  The trace is replayed under
   its own recorded config and the fingerprint checked against the
   sealed trailer (replay-vs-record) — or, for unsealed/torn/v1
   traces, replayed twice and checked against itself
   (replay-vs-replay).  Any divergence is a determinism bug, and the
   CLI exits nonzero on it.
2. **What changes under each variant?**  Every variant description —
   the recorded config with overrides applied (policy, GPU count,
   admission, chaos, tenancy) — replays the same job stream, and the
   report carries per-variant metric deltas against the baseline:
   p50/p99 wait and turnaround, shed rate, goodput, completions,
   failures, and per-tenant service/shed deltas.

Variant runs fan out via :func:`repro.par.map_fanout` (metrics are
computed per-run from the ``SimResult`` and the run's own admission
instance, so they are safe under any backend).  The *baseline*
fingerprint check always runs inline: the fingerprint includes global
``guard.*`` counter deltas, which concurrent runs in one process
would corrupt — exactly the kind of accounting subtlety this harness
exists to flush out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.par import map_fanout
from repro.traffic.driver import OpenLoopDriver, TrafficReport
from repro.traffic.trace import TrafficTrace
from repro.util.tables import Table

#: driver-description keys a variant may override
_OVERRIDABLE = (
    "n_gpus", "policy", "admission", "chaos", "horizon", "engine",
    "tenancy",
)

#: metric keys diffed against the baseline (all floats)
_DELTA_KEYS = (
    "p50_wait", "p99_wait", "p50_turnaround", "p99_turnaround",
    "shed_rate", "goodput", "utilization", "makespan",
)


def variant_description(base: Dict[str, Any],
                        overrides: Dict[str, Any]) -> Dict[str, Any]:
    """The recorded driver description with *overrides* applied.

    Overrides are whole-key replacements (``admission`` and
    ``tenancy`` take full description dicts); unknown keys raise so a
    typo'd variant can't silently replay the baseline config.
    """
    bad = sorted(set(overrides) - set(_OVERRIDABLE))
    if bad:
        raise ValueError(
            f"unknown driver override(s) {bad}; overridable keys: "
            f"{sorted(_OVERRIDABLE)}"
        )
    desc = dict(base)
    desc.update(overrides)
    # validate eagerly: a bad variant should fail at build time, not
    # inside a worker
    OpenLoopDriver.from_description(desc)
    return desc


def _metrics_of(report: TrafficReport) -> Dict[str, Any]:
    """Plain-data metric record for one replay (picklable, diffable)."""
    r = report.result
    out: Dict[str, Any] = {
        "p50_wait": report.p50_wait,
        "p99_wait": report.p99_wait,
        "p50_turnaround": report.p50_turnaround,
        "p99_turnaround": report.p99_turnaround,
        "shed_rate": report.shed_rate,
        "goodput": r.goodput,
        "utilization": r.utilization,
        "makespan": r.makespan,
        "completed": r.completed,
        "shed": r.shed,
        "dropped": r.dropped,
        "failures": r.failures,
        "retries": r.retries,
        "tenant_completed_service": dict(r.tenant_completed_service),
        "tenant_shed": dict(r.tenant_shed),
    }
    return out


def _replay_variant(item) -> Dict[str, Any]:
    """Worker: replay the jobs under one variant description.

    Module-level so the process/steal backends can pickle it; returns
    only plain metric data (a TrafficReport drags the live registry
    along, which has no business crossing a process boundary).
    """
    desc, jobs = item
    driver = OpenLoopDriver.from_description(desc)
    return _metrics_of(driver.run(jobs))


@dataclass
class ABVariant:
    """One named configuration variant for the A/B matrix."""

    name: str
    overrides: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ABReport:
    """The structured diff report one :func:`ab_replay` produces."""

    trace_path: str
    #: baseline (recorded-config) replay metrics
    baseline: Dict[str, Any]
    #: True = replay matched the sealed trailer fingerprint;
    #: None = trace carries no trailer (v1 or torn prefix) and the
    #: baseline was checked replay-vs-replay instead
    fingerprint_matched: Optional[bool]
    #: replay-vs-replay determinism of the baseline (always checked)
    self_consistent: bool
    #: per-variant: name, description, metrics, deltas vs baseline
    variants: List[Dict[str, Any]] = field(default_factory=list)
    n_jobs: int = 0
    complete: bool = True

    @property
    def diverged(self) -> bool:
        """Same-config divergence — the condition the CLI exits on."""
        return self.fingerprint_matched is False or not self.self_consistent

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_path": self.trace_path,
            "n_jobs": self.n_jobs,
            "complete": self.complete,
            "fingerprint_matched": self.fingerprint_matched,
            "self_consistent": self.self_consistent,
            "baseline": dict(self.baseline),
            "variants": [dict(v) for v in self.variants],
        }

    def render(self) -> str:
        """Monospace diff table (baseline row + one row per variant)."""
        table = Table(
            ["config", "p50 turn", "p99 turn", "p99 wait", "shed rate",
             "goodput", "completed"],
            title=f"A/B replay: {self.trace_path} "
                  f"({self.n_jobs} jobs)",
        )
        b = self.baseline
        table.add_row("baseline", b["p50_turnaround"],
                      b["p99_turnaround"], b["p99_wait"],
                      b["shed_rate"], b["goodput"], b["completed"])
        for v in self.variants:
            m, d = v["metrics"], v["deltas"]
            table.add_row(
                v["name"], m["p50_turnaround"], m["p99_turnaround"],
                m["p99_wait"], m["shed_rate"], m["goodput"],
                f"{m['completed']} ({d['completed']:+d})",
            )
        return str(table)


def _deltas(variant: Dict[str, Any],
            baseline: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        k: variant[k] - baseline[k] for k in _DELTA_KEYS
    }
    for k in ("completed", "shed", "dropped", "failures", "retries"):
        out[k] = int(variant[k]) - int(baseline[k])
    tenants = set(variant["tenant_completed_service"]) \
        | set(baseline["tenant_completed_service"])
    if tenants:
        out["tenant_completed_service"] = {
            t: variant["tenant_completed_service"].get(t, 0.0)
               - baseline["tenant_completed_service"].get(t, 0.0)
            for t in sorted(tenants)
        }
        out["tenant_shed"] = {
            t: variant["tenant_shed"].get(t, 0)
               - baseline["tenant_shed"].get(t, 0)
            for t in sorted(tenants)
        }
    return out


def ab_replay(
    path: Union[str, Path],
    variants: Sequence[ABVariant],
    backend: Union[None, str] = "serial",
    strict: bool = True,
) -> ABReport:
    """Replay the trace at *path* against its own config + *variants*.

    ``strict=False`` accepts a torn/unsealed trace and replays its
    committed prefix (the SIGKILL-mid-capture triage path); the
    baseline is then checked replay-vs-replay only, since no trailer
    survived to check against.  ``backend`` drives the variant
    fan-out (default serial; the baseline fingerprint check always
    runs inline — see module docstring).
    """
    trace = TrafficTrace.load(path, strict=strict)
    base_desc = trace.meta.get("driver")
    if base_desc is None:
        raise ValueError(f"{path}: trace header has no driver config")
    with _trace.span("traffic.ab_replay", n_jobs=len(trace.jobs),
                     n_variants=len(variants)):
        baseline_driver = OpenLoopDriver.from_description(base_desc)
        first = baseline_driver.run(trace.jobs)
        second = OpenLoopDriver.from_description(base_desc).run(trace.jobs)
        self_consistent = first.fingerprint() == second.fingerprint()
        fingerprint_matched = (
            None if trace.fingerprint is None
            else first.fingerprint() == trace.fingerprint
        )
        baseline_metrics = _metrics_of(first)
        descs = [
            variant_description(base_desc, v.overrides) for v in variants
        ]
        results = map_fanout(
            _replay_variant, [(d, trace.jobs) for d in descs],
            backend=backend,
        )
    report = ABReport(
        trace_path=str(path),
        baseline=baseline_metrics,
        fingerprint_matched=fingerprint_matched,
        self_consistent=self_consistent,
        n_jobs=len(trace.jobs),
        complete=trace.complete,
    )
    for v, desc, metrics in zip(variants, descs, results):
        report.variants.append({
            "name": v.name,
            "description": desc,
            "metrics": metrics,
            "deltas": _deltas(metrics, baseline_metrics),
        })
    _metrics.counter("traffic.ab_replays").add()
    _metrics.counter("traffic.ab_variants").add(len(variants))
    if report.diverged:
        _metrics.counter("traffic.ab_divergences").add()
    return report
