"""Open-loop traffic driver: offered load against the guard layer.

Everything the repo had before this module was closed-loop: a batch of
jobs, run to completion, next batch.  Real clusters see *offered*
load — arrivals keep coming whether or not the machine is keeping up —
and that is the regime where the paper's throttling recommendation
(§4.7) and the guard layer's shed/breaker paths actually live.

:class:`OpenLoopDriver` composes the pieces end to end: an arrival
process + user population (or a recorded :class:`TrafficTrace`) feeds
the event-driven :class:`~repro.sched.simulator.SimulatorSession`,
with an :class:`~repro.guard.deadline.AdmissionController` shedding at
enqueue time and a :class:`~repro.resilience.faults.FaultInjector`
composable on top for chaos.  Each run produces a
:class:`TrafficReport` whose :meth:`~TrafficReport.fingerprint` is the
replay contract: shed decisions and reasons, ``guard.*`` counter
deltas, and the job completion order, all of which must be
bit-identical when a recorded trace is replayed.

Experiment configuration is declarative (:class:`ChaosSpec`,
:class:`AdmissionSpec`) so a trace header carries everything needed to
rebuild the exact run — :func:`record_experiment` writes it,
:func:`replay_experiment` rebuilds from the file alone, and
:func:`verify_replay` runs the replay twice and demands identical
fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.guard.deadline import AdmissionController, CircuitBreaker
from repro.obs import metrics as _metrics
from repro.resilience.faults import FaultInjector
from repro.sched.policies import Fcfs, Sjf, SjfWithQuota
from repro.sched.simulator import SimResult, SimulatorSession
from repro.traffic.arrivals import (
    ArrivalProcess,
    process_from_description,
)
from repro.traffic.population import UserPopulation
from repro.traffic.trace import TraceWriter, TrafficTrace

#: policy registry for trace headers (name -> factory(n_gpus))
_POLICIES = {
    "fcfs": lambda n_gpus: Fcfs(),
    "sjf": lambda n_gpus: Sjf(),
    "sjf_quota": lambda n_gpus: SjfWithQuota(n_gpus, 0.25),
}


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative fault-injector configuration (trace-header-able)."""

    mtbf: float
    seed: int = 0

    def make(self) -> FaultInjector:
        return FaultInjector(mtbf=self.mtbf, seed=self.seed)

    def describe(self) -> Dict[str, Any]:
        return {"mtbf": self.mtbf, "seed": self.seed}

    @classmethod
    def from_description(cls, desc: Dict[str, Any]) -> "ChaosSpec":
        return cls(mtbf=desc["mtbf"], seed=desc["seed"])


@dataclass(frozen=True)
class AdmissionSpec:
    """Declarative admission-controller + breaker configuration."""

    max_queue: Optional[int] = None
    protect_priority: int = 0
    backlog_estimate: bool = True
    breaker_failure_threshold: Optional[int] = None
    breaker_recovery_time: float = 1.0

    def make(self) -> AdmissionController:
        breaker = None
        if self.breaker_failure_threshold is not None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_failure_threshold,
                recovery_time=self.breaker_recovery_time,
                name="traffic",
            )
        return AdmissionController(
            max_queue=self.max_queue,
            protect_priority=self.protect_priority,
            breaker=breaker,
            backlog_estimate=self.backlog_estimate,
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "max_queue": self.max_queue,
            "protect_priority": self.protect_priority,
            "backlog_estimate": self.backlog_estimate,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_recovery_time": self.breaker_recovery_time,
        }

    @classmethod
    def from_description(cls, desc: Dict[str, Any]) -> "AdmissionSpec":
        return cls(
            max_queue=desc["max_queue"],
            protect_priority=desc["protect_priority"],
            backlog_estimate=desc["backlog_estimate"],
            breaker_failure_threshold=desc["breaker_failure_threshold"],
            breaker_recovery_time=desc["breaker_recovery_time"],
        )


@dataclass
class TrafficReport:
    """One open-loop run, summarized for gates and replay checks."""

    result: SimResult
    #: (job_id, reason) per shed decision, in decision order
    shed_log: List[Tuple[Optional[int], str]] = field(default_factory=list)
    #: ``guard.*`` counter deltas accumulated during the run
    guard_counters: Dict[str, float] = field(default_factory=dict)
    breaker_state: Optional[Dict[str, Any]] = None
    #: breaker trips across the run (all tenants, in tenancy mode)
    trips: int = 0
    #: per-tenant counters from the registry (tenancy mode only)
    tenant_summary: Optional[Dict[str, Dict[str, Any]]] = None
    #: the live :class:`~repro.tenant.TenantRegistry` behind the run
    #: (tenancy mode only; carries the flight recorder for incident
    #: dumps — never part of the fingerprint)
    registry: Optional[Any] = None

    @property
    def p50_wait(self) -> float:
        return self.result.wait_percentile(50.0)

    @property
    def p99_wait(self) -> float:
        return self.result.wait_percentile(99.0)

    @property
    def p50_turnaround(self) -> float:
        return self.result.turnaround_percentile(50.0)

    @property
    def p99_turnaround(self) -> float:
        return self.result.turnaround_percentile(99.0)

    @property
    def shed_rate(self) -> float:
        return self.result.shed_rate

    def fingerprint(self) -> Dict[str, Any]:
        """The replay contract: two runs of the same trace under the
        same specs must produce an identical (bit-exact) fingerprint —
        same shed decisions and reasons, same ``guard.*`` counters,
        same completion order and times."""
        fp: Dict[str, Any] = {
            "completions": [
                [t, j] for t, j in self.result.completions
            ],
            "shed_log": [[j, r] for j, r in self.shed_log],
            "guard_counters": dict(self.guard_counters),
            "breaker_state": (
                None if self.breaker_state is None
                else dict(self.breaker_state)
            ),
            "makespan": self.result.makespan,
            "completed": self.result.completed,
            "shed": self.result.shed,
            "dropped": self.result.dropped,
            "failures": self.result.failures,
            "retries": self.result.retries,
        }
        # tenant-keyed entries appear only when tenancy was in play, so
        # pre-tenant fingerprints (and their recorded traces) stay
        # byte-stable
        if self.tenant_summary is not None:
            fp["trips"] = self.trips
            fp["tenant_summary"] = {
                k: dict(v) for k, v in self.tenant_summary.items()
            }
            fp["tenant_completed"] = dict(self.result.tenant_completed)
            fp["tenant_completed_service"] = dict(
                self.result.tenant_completed_service
            )
            fp["tenant_shed"] = dict(self.result.tenant_shed)
        return fp


class OpenLoopDriver:
    """Feed an offered-load job stream through the guarded scheduler.

    Each :meth:`run` builds *fresh* chaos and admission state from the
    declarative specs, so runs are independent and a replayed trace
    meets exactly the machine state the recorded run met.
    """

    def __init__(
        self,
        n_gpus: int,
        policy: str = "fcfs",
        admission: Optional[AdmissionSpec] = None,
        chaos: Optional[ChaosSpec] = None,
        retry_policy=None,
        horizon: Optional[float] = None,
        engine: str = "auto",
        tenancy=None,
    ):
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; one of {sorted(_POLICIES)}"
            )
        if admission is not None and tenancy is not None:
            raise ValueError(
                "pass admission= (single-tenant) or tenancy= "
                "(multi-tenant), not both"
            )
        self.n_gpus = n_gpus
        self.policy = policy
        self.admission = admission
        self.chaos = chaos
        self.retry_policy = retry_policy
        self.horizon = horizon
        self.engine = engine
        #: :class:`repro.tenant.TenancySpec` — multi-tenant mode
        self.tenancy = tenancy

    def describe(self) -> Dict[str, Any]:
        return {
            "n_gpus": self.n_gpus,
            "policy": self.policy,
            "admission": (
                None if self.admission is None
                else self.admission.describe()
            ),
            "chaos": None if self.chaos is None else self.chaos.describe(),
            "horizon": self.horizon,
            "engine": self.engine,
            "tenancy": (
                None if self.tenancy is None else self.tenancy.describe()
            ),
        }

    @classmethod
    def from_description(cls, desc: Dict[str, Any]) -> "OpenLoopDriver":
        tenancy = None
        if desc.get("tenancy") is not None:
            # function-level import: repro.tenant sits above this module
            from repro.tenant.spec import TenancySpec

            tenancy = TenancySpec.from_description(desc["tenancy"])
        return cls(
            n_gpus=desc["n_gpus"],
            policy=desc["policy"],
            admission=(
                None if desc.get("admission") is None
                else AdmissionSpec.from_description(desc["admission"])
            ),
            chaos=(
                None if desc.get("chaos") is None
                else ChaosSpec.from_description(desc["chaos"])
            ),
            horizon=desc.get("horizon"),
            engine=desc.get("engine", "auto"),
            tenancy=tenancy,
        )

    def run(self, jobs, tap=None) -> TrafficReport:
        """Drive *jobs* (any iterable of :class:`Job`) to resolution.

        *tap* (optional) is a capture observer — see
        :class:`repro.traffic.capture.CaptureTap` — whose hooks the
        session calls on every offered job and shed/completion/fault
        decision.
        """
        return self._run(jobs=jobs, stream=None, tap=tap)

    def run_stream(self, stream, tap=None) -> TrafficReport:
        """Drive a lazy job *stream* (never materialized) to the
        driver's horizon.

        The stream — typically ``population.stream_jobs(
        process.stream(seed))`` — may be unbounded; the session pulls
        one lookahead job at a time and stops offering at the horizon,
        bit-exactly matching :meth:`run` on the horizon-truncated
        materialized list.
        """
        if self.horizon is None:
            raise ValueError(
                "run_stream needs a driver horizon — an unbounded "
                "stream never resolves without one"
            )
        return self._run(jobs=None, stream=stream, tap=tap)

    def _run(self, jobs, stream, tap) -> TrafficReport:
        if self.tenancy is not None:
            admission = self.tenancy.make()
        elif self.admission is not None:
            admission = self.admission.make()
        else:
            admission = None
        injector = None if self.chaos is None else self.chaos.make()
        guard_before = _guard_counter_snapshot()
        session = SimulatorSession(
            self.n_gpus, jobs, _POLICIES[self.policy](self.n_gpus),
            horizon=self.horizon, fault_injector=injector,
            retry_policy=self.retry_policy, engine=self.engine,
            admission=admission, stream=stream, tap=tap,
        )
        result = session.run_to_completion()
        guard_after = _guard_counter_snapshot()
        deltas = {
            k: guard_after[k] - guard_before.get(k, 0)
            for k in guard_after
            if guard_after[k] != guard_before.get(k, 0)
        }
        registry = admission if self.tenancy is not None else None
        return TrafficReport(
            result=result,
            shed_log=[] if admission is None else list(admission.shed_log),
            guard_counters=deltas,
            breaker_state=(
                None if admission is None or admission.breaker is None
                else admission.breaker.checkpoint_state()
            ),
            trips=0 if registry is None else registry.trips,
            tenant_summary=(
                None if registry is None else registry.tenant_summary()
            ),
            registry=registry,
        )


def _guard_counter_snapshot() -> Dict[str, float]:
    from repro.obs import snapshot_prefix

    return snapshot_prefix("guard.")


# ---------------------------------------------------------------------------
# record / replay experiments
# ---------------------------------------------------------------------------


def generate_jobs(process: ArrivalProcess, population: UserPopulation,
                  n_jobs: int, arrival_seed: int = 0):
    """Synthesize *n_jobs* open-loop jobs: process times x population."""
    arrivals = process.sample(n_jobs, seed=arrival_seed)
    return population.jobs_for(arrivals)


def record_experiment(
    path: Union[str, Path],
    process: ArrivalProcess,
    population: UserPopulation,
    driver: OpenLoopDriver,
    n_jobs: int,
    arrival_seed: int = 0,
    sync: bool = False,
) -> Tuple[TrafficTrace, TrafficReport]:
    """Generate, run, and record one open-loop experiment.

    The trace header carries the full experiment description — arrival
    process, population, driver (admission + chaos + policy), seeds —
    so :func:`replay_experiment` needs nothing but the file.  The
    trailer is sealed with the run's fingerprint *after* the run
    completes: a replay can then be checked against the original run
    (not just against another replay), and an aborted run leaves an
    unsealed prefix rather than an orphan trace that looks complete
    but has no report behind it.
    """
    jobs = generate_jobs(process, population, n_jobs,
                         arrival_seed=arrival_seed)
    meta = {
        "process": process.describe(),
        "population": population.describe(),
        "driver": driver.describe(),
        "n_jobs": n_jobs,
        "arrival_seed": arrival_seed,
    }
    writer = TraceWriter(path, meta=meta, n_jobs=n_jobs, sync=sync)
    try:
        for job in jobs:
            writer.append_job(job)
        report = driver.run(jobs)
        writer.seal(report.fingerprint())
    finally:
        writer.close()
    trace = TrafficTrace(jobs, meta, fingerprint=report.fingerprint())
    _metrics.counter("traffic.experiments_recorded").add()
    return trace, report


def replay_experiment(
    path: Union[str, Path],
) -> Tuple[TrafficReport, TrafficTrace]:
    """Rebuild the driver from the trace header and re-run the jobs."""
    trace = TrafficTrace.load(path)
    driver = OpenLoopDriver.from_description(trace.meta["driver"])
    report = driver.run(trace.jobs)
    _metrics.counter("traffic.experiments_replayed").add()
    return report, trace


def verify_replay(path: Union[str, Path]) -> TrafficReport:
    """Replay *path* twice and demand bit-identical fingerprints.

    When the trace carries a sealed fingerprint trailer (format v2,
    written by :func:`record_experiment` and the capture tap), the
    replay is additionally checked against the *recorded run's*
    fingerprint — replay-vs-record, the check the pre-trailer format
    could never make.  Also regenerates the job stream from the
    recorded generator parameters and checks it matches the recorded
    jobs — the trace is simultaneously a replay input and a
    cross-check on the generator.  Raises ``AssertionError`` on any
    divergence; returns the replay report on success.
    """
    first, trace = replay_experiment(path)
    second, _ = replay_experiment(path)
    if first.fingerprint() != second.fingerprint():
        raise AssertionError(
            f"{path}: replay diverged from itself — nondeterministic "
            "driver state leaked between runs"
        )
    if trace.fingerprint is not None \
            and first.fingerprint() != trace.fingerprint:
        raise AssertionError(
            f"{path}: replay diverged from the recorded run — the "
            "sealed trailer fingerprint does not match the replay"
        )
    meta = trace.meta
    if meta.get("mode") == "stream":
        # captured from an unbounded stream: regenerate lazily and
        # compare the offered prefix
        import itertools

        population = UserPopulation.from_description(meta["population"])
        stream = population.stream_jobs(
            process_from_description(meta["process"]).stream(
                meta["arrival_seed"]
            )
        )
        regenerated = list(itertools.islice(stream, len(trace.jobs)))
    else:
        regenerated = generate_jobs(
            process_from_description(meta["process"]),
            UserPopulation.from_description(meta["population"]),
            meta.get("n_jobs") or len(trace.jobs),
            arrival_seed=meta["arrival_seed"],
        )
        horizon = meta["driver"].get("horizon")
        if meta.get("mode") == "batch" and horizon is not None:
            # a live batch capture records the *offered* jobs: the
            # session never offers arrivals past the horizon
            regenerated = [
                j for j in regenerated if j.arrival <= horizon
            ]
    if regenerated != trace.jobs:
        raise AssertionError(
            f"{path}: regenerated job stream differs from the recorded "
            "trace — generator determinism broken"
        )
    return first


# ---------------------------------------------------------------------------
# MuMMI coupling: arrival-modulated campaign cycles
# ---------------------------------------------------------------------------


def _window_counts(arrivals, n_cycles: int, window: float) -> np.ndarray:
    """Arrivals per half-open cycle window ``[k*window, (k+1)*window)``.

    ``np.histogram(..., range=(0, horizon))`` treats the last bin as
    *closed* on the right, so an arrival at exactly ``t == horizon``
    was counted into the final cycle while the same arrival at an
    interior boundary belongs to the *next* window — inconsistent
    edge semantics that skewed the last cycle's offered load.  Every
    window here is half-open; arrivals at or past the horizon fall
    outside every cycle.
    """
    arr = np.asarray(arrivals, dtype=float)
    idx = np.floor_divide(arr, window).astype(int)
    valid = (arr >= 0.0) & (idx < n_cycles)
    return np.bincount(idx[valid], minlength=n_cycles)


def drive_campaign(
    campaign,
    process: ArrivalProcess,
    n_cycles: int,
    window: float,
    arrival_seed: int = 0,
    min_jobs: int = 1,
) -> List[Dict[str, float]]:
    """Drive a :class:`~repro.workflow.mummi.MummiCampaign` open-loop.

    Instead of a fixed ``jobs_per_cycle``, each cycle launches as many
    micro MD jobs as the arrival process delivered in that cycle's
    *window* (clamped to ``[min_jobs, n_patches]``) — candidate demand
    becomes offered load, so bursts pile work onto the cluster
    simulator and exercise the campaign's breaker/shedding paths the
    way a tenant pile-up would.  Returns the per-cycle metric dicts,
    each annotated with the cycle's ``offered_jobs``.
    """
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    if window <= 0:
        raise ValueError("window must be positive")
    n_patches = campaign.macro.patch_compositions().size
    rng = np.random.default_rng(
        np.random.SeedSequence(arrival_seed, spawn_key=(3,))
    )
    # draw generously, then bin into cycle windows
    horizon = n_cycles * window
    arrivals: List[float] = []
    block = max(16, campaign.jobs_per_cycle * n_cycles)
    while not arrivals or arrivals[-1] < horizon:
        more = process.times(block, rng)
        offset = arrivals[-1] if arrivals else 0.0
        arrivals.extend((offset + t) for t in more.tolist())
    counts = _window_counts(arrivals, n_cycles, window)
    out: List[Dict[str, float]] = []
    nominal = campaign.jobs_per_cycle
    try:
        for c in range(n_cycles):
            offered = int(min(max(int(counts[c]), min_jobs), n_patches))
            campaign.jobs_per_cycle = offered
            metrics = campaign.run_cycle()
            metrics["offered_jobs"] = float(offered)
            out.append(metrics)
    finally:
        campaign.jobs_per_cycle = nominal
    _metrics.counter("traffic.campaign_cycles").add(len(out))
    return out
