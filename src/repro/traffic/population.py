"""A large simulated user population behind the arrival stream.

The paper's cluster serves many users at once; what matters for the
guard layer is that jobs are *heterogeneous* — different users bring
different service demands, priorities, and deadline discipline.  A
:class:`UserPopulation` models millions of users without materializing
any of them:

- **Lazy per-user RNG streams.**  User *u*'s stream is
  ``SeedSequence(seed, spawn_key=(NS, u))`` — a pure function of the
  population seed and the user id, constructed on first touch.  No
  O(n_users) state, no overlap between users (SeedSequence spawn-key
  partitioning), and bit-reproducibility regardless of how many users
  the run actually touches.
- **Skewed popularity.**  Job submitters follow a power-law: arrival
  *k*'s user is ``floor(n_users * u^skew)`` for a uniform draw *u*
  from the assignment stream, concentrating traffic on the heavy
  users the way production queues see it.
- **Per-user profiles.**  Each user gets a stable service-scale,
  priority class, deadline slack, and best-effort flag, drawn once
  from a dedicated profile stream; services then come from the user's
  own job stream via :func:`repro.sched.workloads.draw_services`, so
  the population's realized mean service stays ``mean_service``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sched.simulator import Job
from repro.sched.workloads import draw_services, jobs_from_arrivals

#: spawn-key namespaces: assignment stream / per-user jobs / profiles
_NS_ASSIGN, _NS_JOBS, _NS_PROFILE = 0, 1, 2


class UserProfile:
    """Stable per-user traits (a pure function of seed and user id)."""

    __slots__ = ("user_id", "mean_scale", "priority", "slack",
                 "best_effort")

    def __init__(self, user_id: int, mean_scale: float, priority: int,
                 slack: float, best_effort: bool):
        self.user_id = user_id
        self.mean_scale = mean_scale
        self.priority = priority
        self.slack = slack
        self.best_effort = best_effort


class UserPopulation:
    """Millions of lazily-materialized simulated users.

    ``jobs_for(arrivals)`` assigns each arrival to a user and draws
    that job's service/priority/deadline from the user's own streams.
    The mapping is deterministic: the same population (seed + params)
    fed the same arrival count sequence produces bit-identical jobs,
    which is what lets a recorded trace double as a cross-check on the
    generator.
    """

    def __init__(
        self,
        n_users: int = 1_000_000,
        seed: int = 0,
        mean_service: float = 10.0,
        sigma: float = 0.8,
        long_fraction: float = 0.1,
        skew: float = 2.0,
        n_priorities: int = 3,
        deadline_slack: Sequence[float] = (2.0, 6.0),
        best_effort_fraction: float = 0.25,
        tenant: Optional[str] = None,
    ):
        if n_users < 1:
            raise ValueError("need at least one user")
        if mean_service <= 0 or sigma <= 0:
            raise ValueError("bad service parameters")
        if skew < 1.0:
            raise ValueError("skew >= 1 (1 = uniform popularity)")
        if n_priorities < 1:
            raise ValueError("need at least one priority class")
        if len(deadline_slack) != 2 or deadline_slack[0] <= 0 \
                or deadline_slack[1] < deadline_slack[0]:
            raise ValueError("deadline_slack is (lo, hi), 0 < lo <= hi")
        if not (0.0 <= best_effort_fraction <= 1.0):
            raise ValueError("best_effort_fraction in [0, 1]")
        self.n_users = n_users
        self.seed = seed
        self.mean_service = mean_service
        self.sigma = sigma
        self.long_fraction = long_fraction
        self.skew = skew
        self.n_priorities = n_priorities
        self.deadline_slack = (float(deadline_slack[0]),
                               float(deadline_slack[1]))
        self.best_effort_fraction = best_effort_fraction
        #: tenant tag stamped on every synthesized job (None = anonymous)
        self.tenant = tenant
        self.reset()

    def reset(self) -> None:
        """Rewind every stream to the just-constructed state."""
        self._assign_rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_NS_ASSIGN,))
        )
        self._user_rngs: Dict[int, np.random.Generator] = {}
        self._profiles: Dict[int, UserProfile] = {}

    # -- lazy per-user state -------------------------------------------

    def _user_stream(self, ns: int, user_id: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(ns, user_id))
        )

    def profile(self, user_id: int) -> UserProfile:
        """The stable profile of *user_id* (cached after first touch)."""
        if not (0 <= user_id < self.n_users):
            raise ValueError("user_id out of range")
        prof = self._profiles.get(user_id)
        if prof is None:
            rng = self._user_stream(_NS_PROFILE, user_id)
            lo, hi = self.deadline_slack
            # lognormal service scale with unit mean, so the
            # population-wide realized mean stays `mean_service`
            mean_scale = float(np.exp(rng.normal(-0.08, 0.4)))
            prof = UserProfile(
                user_id=user_id,
                mean_scale=mean_scale,
                priority=int(rng.integers(self.n_priorities)),
                slack=float(rng.uniform(lo, hi)),
                best_effort=bool(rng.random() < self.best_effort_fraction),
            )
            self._profiles[user_id] = prof
        return prof

    def pick_user(self) -> int:
        """Draw the next submitter from the power-law popularity."""
        u = float(self._assign_rng.random())
        return min(int(self.n_users * u ** self.skew), self.n_users - 1)

    # -- job synthesis --------------------------------------------------

    def jobs_for(self, arrivals: Sequence[float],
                 job_id_base: int = 0) -> List[Job]:
        """One :class:`Job` per arrival, drawn from per-user streams."""
        arrivals = np.asarray(arrivals, dtype=float)
        n = arrivals.size
        services = np.empty(n)
        longs = np.empty(n, dtype=bool)
        prios = np.empty(n, dtype=int)
        deadlines: List[Optional[float]] = []
        for k in range(n):
            uid = self.pick_user()
            prof = self.profile(uid)
            rng = self._user_rngs.get(uid)
            if rng is None:
                rng = self._user_stream(_NS_JOBS, uid)
                self._user_rngs[uid] = rng
            svc, is_long = draw_services(
                rng, 1, self.mean_service * prof.mean_scale,
                self.sigma, self.long_fraction,
            )
            services[k] = svc[0]
            longs[k] = is_long[0]
            prios[k] = prof.priority
            deadlines.append(
                None if prof.best_effort
                else float(arrivals[k] + prof.slack * services[k])
            )
        return jobs_from_arrivals(
            arrivals, services, is_long=longs, priorities=prios,
            deadlines=deadlines, job_id_base=job_id_base,
            tenant=self.tenant,
        )

    def stream_jobs(self, times, job_id_base: int = 0):
        """Lazy twin of :meth:`jobs_for`: one :class:`Job` per arrival
        pulled from the (possibly unbounded) *times* iterable.

        Makes the identical per-arrival draws in the identical order —
        pick_user from the assignment stream, lazy profile, one
        ``draw_services`` pull from the user's job stream — so the
        first ``n`` jobs are bit-exact with ``jobs_for(sample(n))`` on
        a freshly :meth:`reset` population (the streamed-vs-
        materialized equivalence the capture tests gate).  Never
        materializes the job list: a horizon-bounded
        :class:`~repro.sched.simulator.SimulatorSession` consumes it
        one lookahead job at a time.
        """
        k = 0
        for t in times:
            arrival = float(t)
            uid = self.pick_user()
            prof = self.profile(uid)
            rng = self._user_rngs.get(uid)
            if rng is None:
                rng = self._user_stream(_NS_JOBS, uid)
                self._user_rngs[uid] = rng
            svc, is_long = draw_services(
                rng, 1, self.mean_service * prof.mean_scale,
                self.sigma, self.long_fraction,
            )
            service = float(svc[0])
            yield Job(
                job_id=job_id_base + k,
                arrival=arrival,
                service=service,
                is_long=bool(is_long[0]),
                priority=int(prof.priority),
                deadline=(
                    None if prof.best_effort
                    else float(arrival + prof.slack * service)
                ),
                tenant=self.tenant,
            )
            k += 1

    @property
    def touched_users(self) -> int:
        """Users whose job stream has been materialized so far."""
        return len(self._user_rngs)

    def describe(self) -> dict:
        """JSON-able parameter record for trace headers."""
        return {
            "n_users": self.n_users,
            "seed": self.seed,
            "mean_service": self.mean_service,
            "sigma": self.sigma,
            "long_fraction": self.long_fraction,
            "skew": self.skew,
            "n_priorities": self.n_priorities,
            "deadline_slack": list(self.deadline_slack),
            "best_effort_fraction": self.best_effort_fraction,
            "tenant": self.tenant,
        }

    @classmethod
    def from_description(cls, desc: dict) -> "UserPopulation":
        return cls(
            n_users=desc["n_users"], seed=desc["seed"],
            mean_service=desc["mean_service"], sigma=desc["sigma"],
            long_fraction=desc["long_fraction"], skew=desc["skew"],
            n_priorities=desc["n_priorities"],
            deadline_slack=tuple(desc["deadline_slack"]),
            best_effort_fraction=desc["best_effort_fraction"],
            # .get: traces recorded before the tenant layer carry no tag
            tenant=desc.get("tenant"),
        )
