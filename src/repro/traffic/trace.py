"""Record/replay traffic traces: JSONL records in WAL framing.

A trace is the full, self-describing record of one offered-load
experiment: a header (format version, arrival-process and population
parameters, chaos and admission configuration) followed by one record
per job, optional decision records (sheds/completions/faults observed
by a live capture tap), and — since format version 2 — a sealed
trailer carrying the recording run's replay fingerprint.  Records are
JSON payloads inside :mod:`repro.durable.wal` CRC frames, which buys
the durability semantics the incident-replay story needs for free: a
recorder killed mid-write leaves a torn tail that readers simply stop
at, a committed record is a record that replays, and corruption is
detected rather than parsed.

Record kinds after the header frame::

    {"id": ..., "arrival": ..., ...}              job
    {"d": "shed"|"complete"|..., "t": t, "id": j} decision (v2)
    {"trailer": {"n_jobs": N, "fingerprint": F}}  seal (v2, last frame)

The trailer is the commit point of a capture: a trace without one is
a torn prefix (the recorder crashed or was killed mid-run), loadable
with ``strict=False`` for triage but rejected by strict loads.  With
a trailer present, replay-vs-record divergence is detectable — the
fingerprint of a replay under the recorded config must match ``F``
bit-exactly.

Loads go through :func:`repro.durable.wal.read_records`, a read-only
scan: opening a ``WriteAheadLog`` to read would take an append handle
and truncate torn bytes *on disk*, corrupting a file a live capture
is still appending to.  (Version 1 traces — header + jobs, no
trailer — remain loadable; completeness falls back to the header's
``n_jobs`` count.)

Python's ``json`` emits shortest-round-trip ``repr`` floats, so every
arrival/service/deadline survives the write-read cycle bit-exactly —
the property the replay-determinism tests (same shed reasons, same
counters, same completion order) rest on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.durable.wal import WriteAheadLog, read_records
from repro.sched.simulator import Job

FORMAT = "repro-traffic-trace"
VERSION = 2
#: versions this loader understands (1 = pre-capture: no decisions,
#: no trailer; completeness judged by the header's n_jobs)
READABLE_VERSIONS = (1, 2)


def _job_record(job: Job) -> Dict[str, Any]:
    rec = {
        "id": job.job_id,
        "arrival": job.arrival,
        "service": job.service,
        "is_long": job.is_long,
        "priority": job.priority,
        "deadline": job.deadline,
    }
    # written only when set, so single-tenant traces stay byte-stable
    # against the pre-tenant format
    if job.tenant is not None:
        rec["tenant"] = job.tenant
    return rec


def _job_from_record(rec: Dict[str, Any]) -> Job:
    return Job(
        job_id=int(rec["id"]),
        arrival=float(rec["arrival"]),
        service=float(rec["service"]),
        is_long=bool(rec["is_long"]),
        priority=int(rec["priority"]),
        deadline=(
            None if rec["deadline"] is None else float(rec["deadline"])
        ),
        tenant=rec.get("tenant"),
    )


class TraceWriter:
    """Incremental, crash-safe trace writer (live-capture mode).

    Writes the header up front, then jobs/decisions as they happen,
    then :meth:`seal` commits the trailer.  Killing the process at any
    byte boundary leaves a loadable committed prefix: the header plus
    every flushed frame.  ``flush_every`` batches OS flushes to keep
    the tap off the simulator's hot path (a crash loses at most the
    last ``flush_every - 1`` records); ``sync=True`` fsyncs every
    frame — incident-recorder mode, where the trace must survive the
    machine, not just the process.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        n_jobs: Optional[int] = None,
        sync: bool = False,
        flush_every: int = 64,
    ):
        self.path = Path(path)
        if self.path.exists():
            self.path.unlink()  # a trace file is immutable once recorded
        self.meta = dict(meta or {})
        self.n_jobs = 0
        self.sealed = False
        self._wal = WriteAheadLog(
            self.path, sync=sync,
            flush_every=1 if sync else max(1, int(flush_every)),
        )
        header = {
            "format": FORMAT,
            "version": VERSION,
            "n_jobs": n_jobs,  # None when capturing an unbounded stream
            "meta": self.meta,
        }
        self._wal.append(json.dumps(header, sort_keys=True).encode())
        self._wal.flush()  # a capture file is identifiable from frame one

    def append_job(self, job: Job) -> None:
        self._wal.append(
            json.dumps(_job_record(job), sort_keys=True).encode()
        )
        self.n_jobs += 1

    def append_decision(self, kind: str, t: float, job_id: int) -> None:
        self._wal.append(
            json.dumps({"d": kind, "t": t, "id": job_id},
                       sort_keys=True).encode()
        )

    def seal(self, fingerprint: Optional[Dict[str, Any]] = None) -> None:
        """Commit the trailer; the trace is complete once this returns."""
        if self.sealed:
            raise RuntimeError("trace already sealed")
        trailer = {"n_jobs": self.n_jobs, "fingerprint": fingerprint}
        self._wal.append(
            json.dumps({"trailer": trailer}, sort_keys=True).encode()
        )
        self.sealed = True
        self.close()

    def close(self) -> None:
        """Flush and release the file handle (without sealing)."""
        if self._wal is not None:
            self._wal.flush()
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TrafficTrace:
    """An in-memory trace: header metadata plus the job sequence."""

    def __init__(self, jobs: List[Job],
                 meta: Optional[Dict[str, Any]] = None,
                 complete: bool = True,
                 fingerprint: Optional[Dict[str, Any]] = None,
                 decisions: Optional[List[Dict[str, Any]]] = None,
                 version: int = VERSION):
        self.jobs = list(jobs)
        self.meta = dict(meta or {})
        #: False when the on-disk trace is a torn prefix (v2: no sealed
        #: trailer survived; v1: fewer job records than the header
        #: committed to)
        self.complete = complete
        #: the recording run's TrafficReport.fingerprint(), from the
        #: sealed trailer (None for v1 traces and unsealed prefixes)
        self.fingerprint = fingerprint
        #: decision records a capture tap interleaved with the jobs
        self.decisions = list(decisions or [])
        self.version = version

    # -- write path -----------------------------------------------------

    @classmethod
    def record(
        cls,
        path: Union[str, Path],
        jobs: List[Job],
        meta: Optional[Dict[str, Any]] = None,
        sync: bool = False,
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> "TrafficTrace":
        """Write *jobs* (with *meta*) to a fresh sealed trace at *path*.

        The jobs are known up front, so the header carries the count
        and the trailer is written immediately — a recorded trace is
        always complete.  *fingerprint* (when the caller already ran
        the experiment) is sealed into the trailer so replays can be
        checked against the original run.
        """
        writer = TraceWriter(path, meta=meta, n_jobs=len(jobs), sync=sync)
        try:
            for job in jobs:
                writer.append_job(job)
            writer.seal(fingerprint)
        finally:
            writer.close()
        return cls(jobs, meta, fingerprint=fingerprint)

    # -- read path ------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path],
             strict: bool = True) -> "TrafficTrace":
        """Read a trace back; committed frames only, file untouched.

        With ``strict`` (default) a torn trace — no sealed trailer
        (v2) or fewer surviving jobs than the header committed to
        (v1) — raises; pass ``strict=False`` to get the surviving
        prefix with ``complete=False`` (triage on a torn capture).
        """
        payloads = list(read_records(path))
        if not payloads:
            raise ValueError(f"{path}: not a traffic trace (no header)")
        header = json.loads(payloads[0].decode())
        if header.get("format") != FORMAT:
            raise ValueError(f"{path}: not a traffic trace")
        version = header.get("version")
        if version not in READABLE_VERSIONS:
            raise ValueError(
                f"{path}: trace version {version!r} not in "
                f"{READABLE_VERSIONS}"
            )
        jobs: List[Job] = []
        decisions: List[Dict[str, Any]] = []
        trailer = None
        for payload in payloads[1:]:
            rec = json.loads(payload.decode())
            if "trailer" in rec:
                trailer = rec["trailer"]
                break  # the seal is by construction the last frame
            if "d" in rec:
                decisions.append(rec)
            else:
                jobs.append(_job_from_record(rec))
        if version == 1:
            complete = len(jobs) == header.get("n_jobs")
            fingerprint = None
            if strict and not complete:
                raise ValueError(
                    f"{path}: torn trace — header committed "
                    f"{header.get('n_jobs')} jobs, {len(jobs)} survived"
                )
        else:
            complete = (trailer is not None
                        and len(jobs) == trailer.get("n_jobs"))
            fingerprint = trailer.get("fingerprint") if trailer else None
            if strict and not complete:
                raise ValueError(
                    f"{path}: torn trace — no sealed trailer "
                    f"({len(jobs)} committed jobs survived; load with "
                    f"strict=False to triage the prefix)"
                )
        return cls(jobs, header.get("meta"), complete=complete,
                   fingerprint=fingerprint, decisions=decisions,
                   version=version)

    # -- comparison surface ---------------------------------------------

    def same_jobs(self, other: "TrafficTrace") -> bool:
        """Bit-exact job-stream equality (Jobs are frozen dataclasses,
        so ``==`` compares every field exactly)."""
        return self.jobs == other.jobs

    def __len__(self) -> int:
        return len(self.jobs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TrafficTrace)
            and self.jobs == other.jobs
            and self.meta == other.meta
        )
