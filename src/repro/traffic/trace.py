"""Record/replay traffic traces: JSONL records in WAL framing.

A trace is the full, self-describing record of one offered-load
experiment: a header (format version, arrival-process and population
parameters, chaos and admission configuration) followed by one record
per job.  Records are JSON payloads inside
:class:`repro.durable.wal.WriteAheadLog` CRC frames, which buys the
durability semantics the incident-replay story needs for free: a
recorder killed mid-write leaves a torn tail that the open scan
truncates, a committed record is a record that replays, and corruption
is detected rather than parsed.

Python's ``json`` emits shortest-round-trip ``repr`` floats, so every
arrival/service/deadline survives the write-read cycle bit-exactly —
the property the replay-determinism tests (same shed reasons, same
counters, same completion order) rest on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.durable.wal import WriteAheadLog
from repro.sched.simulator import Job

FORMAT = "repro-traffic-trace"
VERSION = 1


def _job_record(job: Job) -> Dict[str, Any]:
    rec = {
        "id": job.job_id,
        "arrival": job.arrival,
        "service": job.service,
        "is_long": job.is_long,
        "priority": job.priority,
        "deadline": job.deadline,
    }
    # written only when set, so single-tenant traces stay byte-stable
    # against the pre-tenant format
    if job.tenant is not None:
        rec["tenant"] = job.tenant
    return rec


def _job_from_record(rec: Dict[str, Any]) -> Job:
    return Job(
        job_id=int(rec["id"]),
        arrival=float(rec["arrival"]),
        service=float(rec["service"]),
        is_long=bool(rec["is_long"]),
        priority=int(rec["priority"]),
        deadline=(
            None if rec["deadline"] is None else float(rec["deadline"])
        ),
        tenant=rec.get("tenant"),
    )


class TrafficTrace:
    """An in-memory trace: header metadata plus the job sequence."""

    def __init__(self, jobs: List[Job],
                 meta: Optional[Dict[str, Any]] = None,
                 complete: bool = True):
        self.jobs = list(jobs)
        self.meta = dict(meta or {})
        #: False when the on-disk trace lost committed-count jobs to a
        #: torn tail (the header promised more records than survived)
        self.complete = complete

    # -- write path -----------------------------------------------------

    @classmethod
    def record(
        cls,
        path: Union[str, Path],
        jobs: List[Job],
        meta: Optional[Dict[str, Any]] = None,
        sync: bool = False,
    ) -> "TrafficTrace":
        """Write *jobs* (with *meta*) to a fresh trace at *path*.

        ``sync=True`` fsyncs every frame — incident-recorder mode,
        where the trace must survive the machine, not just the
        process.  The default flush-only mode is what tests and the
        bench harness want.
        """
        path = Path(path)
        if path.exists():
            path.unlink()  # a trace file is immutable once recorded
        trace = cls(jobs, meta)
        with WriteAheadLog(path, sync=sync) as wal:
            header = {
                "format": FORMAT,
                "version": VERSION,
                "n_jobs": len(trace.jobs),
                "meta": trace.meta,
            }
            wal.append(json.dumps(header, sort_keys=True).encode())
            for job in trace.jobs:
                wal.append(
                    json.dumps(_job_record(job), sort_keys=True).encode()
                )
        return trace

    # -- read path ------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path],
             strict: bool = True) -> "TrafficTrace":
        """Read a trace back; committed frames only (WAL semantics).

        With ``strict`` (default) a truncated trace — fewer surviving
        job records than the header committed to — raises; pass
        ``strict=False`` to get the surviving prefix with
        ``complete=False`` (incident triage on a torn trace).
        """
        wal = WriteAheadLog(path, sync=False)
        try:
            payloads = wal.records()
        finally:
            wal.close()
        if not payloads:
            raise ValueError(f"{path}: not a traffic trace (no header)")
        header = json.loads(payloads[0].decode())
        if header.get("format") != FORMAT:
            raise ValueError(f"{path}: not a traffic trace")
        if header.get("version") != VERSION:
            raise ValueError(
                f"{path}: trace version {header.get('version')!r} "
                f"!= {VERSION}"
            )
        jobs = [_job_from_record(json.loads(p.decode()))
                for p in payloads[1:]]
        complete = len(jobs) == header.get("n_jobs")
        if strict and not complete:
            raise ValueError(
                f"{path}: torn trace — header committed "
                f"{header.get('n_jobs')} jobs, {len(jobs)} survived"
            )
        return cls(jobs, header.get("meta"), complete=complete)

    # -- comparison surface ---------------------------------------------

    def same_jobs(self, other: "TrafficTrace") -> bool:
        """Bit-exact job-stream equality (Jobs are frozen dataclasses,
        so ``==`` compares every field exactly)."""
        return self.jobs == other.jobs

    def __len__(self) -> int:
        return len(self.jobs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TrafficTrace)
            and self.jobs == other.jobs
            and self.meta == other.meta
        )
