"""Live trace capture: record a run *while* it is in flight.

:func:`record_experiment` generates a job list, writes it, then runs
it — fine for synthetic experiments, useless for the case the paper's
workload-characterization line actually needs: recording what a live
system served so the same offered load can be replayed against other
configurations.  This module closes that gap:

- :class:`CaptureTap` implements the
  :class:`~repro.sched.simulator.SimulatorSession` tap protocol and
  streams every offered job (plus shed/completion/fault decisions)
  into a WAL-framed :class:`~repro.traffic.trace.TraceWriter`
  **incrementally**, as the simulation offers them.  Killing the
  process at any instant leaves a loadable committed prefix; a run
  that completes seals the trace with the final
  :meth:`~repro.traffic.driver.TrafficReport.fingerprint`, making
  replay-vs-original divergence detectable.
- :func:`capture_experiment` wires a tap into an
  :class:`~repro.traffic.driver.OpenLoopDriver` run — materialized
  (``n_jobs``) or horizon-bounded streamed (``n_jobs=None``, jobs
  pulled lazily from ``population.stream_jobs(process.stream(...))``
  and never materialized).

The captured job sequence is the *offered* sequence in offer order:
re-queued retry copies are session-internal (they are deterministic
replays of the chaos spec) and are not re-recorded, so a captured
trace replays through the normal :func:`replay_experiment` path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.driver import OpenLoopDriver, TrafficReport
from repro.traffic.population import UserPopulation
from repro.traffic.trace import TraceWriter, TrafficTrace


class CaptureTap:
    """Session observer that records a live run into a trace file.

    ``on_job`` / ``on_decision`` are called from the simulator's hot
    loop, so the tap stays cheap there.  With ``sync=False`` a frame
    only reaches the OS at a flush boundary anyway (every
    ``flush_every`` frames), so serialization is deferred to that same
    boundary: the hooks just append the raw event to a pending list
    and the JSON encode + WAL write happen in one burst per boundary
    — crash-durability granularity is unchanged, and the ``ab_replay``
    bench case gates the remaining streaming tax < 3% over the batch
    write-then-run path producing the same artifact.  With
    ``sync=True`` every frame is encoded, written, and fsynced
    immediately (per-frame durability, the incident-recorder
    contract).  ``decisions=False`` records only the job stream — the
    instance publishes ``on_decision = None`` so the session's
    bound-method cache skips the hook entirely instead of paying a
    no-op call per event.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        n_jobs: Optional[int] = None,
        sync: bool = False,
        decisions: bool = True,
        flush_every: int = 64,
    ):
        self._writer = TraceWriter(path, meta=meta, n_jobs=n_jobs,
                                   sync=sync, flush_every=flush_every)
        self.path = Path(path)
        self.decisions = decisions
        self.jobs_captured = 0
        self._limit = 1 if sync else max(1, flush_every)
        self._pending: list = []
        if not decisions:
            self.on_decision = None

    # -- tap protocol (called by SimulatorSession) ----------------------

    def on_job(self, job) -> None:
        self._pending.append(job)
        self.jobs_captured += 1
        if len(self._pending) >= self._limit:
            self._drain()

    def on_decision(self, kind: str, t: float, job_id: int) -> None:
        self._pending.append((kind, t, job_id))
        if len(self._pending) >= self._limit:
            self._drain()

    def _drain(self) -> None:
        """Encode and append pending events, preserving event order."""
        writer = self._writer
        for item in self._pending:
            if type(item) is tuple:
                writer.append_decision(*item)
            else:
                writer.append_job(item)
        self._pending.clear()

    # -- lifecycle ------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._writer.sealed

    def seal(self, fingerprint: Optional[Dict[str, Any]] = None) -> None:
        """Commit the trailer: the capture is complete and verifiable."""
        self._drain()
        self._writer.seal(fingerprint)
        _metrics.counter("traffic.captures_sealed").add()
        _metrics.counter("traffic.capture_jobs").add(self.jobs_captured)

    def close(self) -> None:
        """Drain anything pending and close (without sealing)."""
        if not self._writer.sealed and self._pending:
            self._drain()
        self._writer.close()

    def __enter__(self) -> "CaptureTap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def capture_experiment(
    path: Union[str, Path],
    process: ArrivalProcess,
    population: UserPopulation,
    driver: OpenLoopDriver,
    n_jobs: Optional[int] = None,
    arrival_seed: int = 0,
    sync: bool = False,
    decisions: bool = True,
    flush_every: int = 64,
) -> Tuple[TrafficTrace, TrafficReport]:
    """Run one experiment with a live capture tap attached.

    With ``n_jobs`` the job list is materialized up front (the
    classic batch shape); with ``n_jobs=None`` the driver must carry a
    horizon and the jobs are pulled lazily from the population/process
    streams — never materialized, captured as they are offered.
    Either way the trace on disk grows *during* the run and is sealed
    with the final report fingerprint only if the run completes; a
    crash mid-run leaves a loadable committed prefix.
    """
    mode = "batch" if n_jobs is not None else "stream"
    if mode == "stream" and driver.horizon is None:
        raise ValueError(
            "streamed capture needs a driver horizon "
            "(pass n_jobs= for a bounded batch capture)"
        )
    meta = {
        "process": process.describe(),
        "population": population.describe(),
        "driver": driver.describe(),
        "n_jobs": n_jobs,
        "arrival_seed": arrival_seed,
        "mode": mode,
    }
    tap = CaptureTap(path, meta=meta, n_jobs=n_jobs, sync=sync,
                     decisions=decisions, flush_every=flush_every)
    try:
        with _trace.span("traffic.capture", mode=mode,
                         n_jobs=n_jobs or 0):
            if mode == "batch":
                from repro.traffic.driver import generate_jobs

                jobs = generate_jobs(process, population, n_jobs,
                                     arrival_seed=arrival_seed)
                report = driver.run(jobs, tap=tap)
            else:
                stream = population.stream_jobs(
                    process.stream(arrival_seed)
                )
                report = driver.run_stream(stream, tap=tap)
        tap.seal(report.fingerprint())
    finally:
        tap.close()
    return TrafficTrace.load(path), report
