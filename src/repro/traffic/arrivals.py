"""Synthetic arrival processes for open-loop traffic.

Three models cover the offered-load shapes the paper's scheduling
study (§4.7) and the workflow-mini-app literature care about:

- :class:`PoissonArrivals` — the memoryless baseline; offered load on
  an ``n``-GPU cluster is ``rate * mean_service / n``.
- :class:`MMPPArrivals` — a 2-state Markov-modulated Poisson process:
  exponentially-distributed dwell times alternate between a quiet rate
  and a burst rate.  Same mean rate as a Poisson stream can carry, but
  the bursts are what drive queues, deadline misses, and the guard
  layer's shed paths.
- :class:`DiurnalArrivals` — a nonhomogeneous Poisson process whose
  rate follows a raised-cosine day curve (trough at t=0, peak half a
  period later), sampled by Lewis-Shedler thinning.

Every process is a pure function of its parameters and a seeded
generator: the same seed yields the same arrival times bit-for-bit,
which is what makes a recorded traffic trace redundant with — and
verifiable against — regeneration.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from repro.util.rng import SeedLike, make_rng


class ArrivalProcess:
    """Base interface: ``times(n, rng)`` -> sorted arrival instants."""

    #: short tag recorded in trace headers
    kind = "base"

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def sample(self, n: int, seed: SeedLike = 0) -> np.ndarray:
        """Seed-or-generator convenience wrapper around :meth:`times`."""
        if n < 1:
            raise ValueError("need at least one arrival")
        return self.times(n, make_rng(seed))

    def times_iter(self, rng: np.random.Generator) -> Iterator[float]:
        """Unbounded arrival-time generator; bit-exact with
        :meth:`times` — the first ``n`` yields equal ``times(n, rng)``
        for the same generator state, because each subclass makes the
        identical draws in the identical order (scalar ``Generator``
        draws match block draws elementwise).  This is what lets a
        horizon-bounded streamed session replay bit-exactly against
        the materialized list a trace stores."""
        raise NotImplementedError

    def stream(self, seed: SeedLike = 0) -> Iterator[float]:
        """Seed-or-generator wrapper around :meth:`times_iter`
        (the lazy twin of :meth:`sample`)."""
        return self.times_iter(make_rng(seed))

    def describe(self) -> dict:
        """JSON-able parameter record for trace headers."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at *rate* jobs per time unit."""

    kind = "poisson"

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.cumsum(rng.exponential(1.0 / self.rate, n))

    def times_iter(self, rng: np.random.Generator) -> Iterator[float]:
        scale = 1.0 / self.rate
        t = 0.0
        while True:
            # scalar draws + running sum == cumsum of the block draw
            t += float(rng.exponential(scale))
            yield t

    def describe(self) -> dict:
        return {"kind": self.kind, "rate": self.rate}


class MMPPArrivals(ArrivalProcess):
    """2-state Markov-modulated Poisson process (quiet / burst).

    The process dwells in each state for an exponential time
    (``mean_dwell``), emitting Poisson arrivals at that state's rate.
    The long-run mean rate is the dwell-weighted average
    ``(q*dq + b*db) / (dq + db)``; burstiness shows up as an
    interarrival coefficient of variation above 1 (Poisson's is
    exactly 1).
    """

    kind = "mmpp"

    def __init__(
        self,
        quiet_rate: float,
        burst_rate: float,
        mean_dwell: Tuple[float, float] = (10.0, 2.0),
    ):
        if quiet_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be positive")
        if burst_rate <= quiet_rate:
            raise ValueError("burst_rate must exceed quiet_rate")
        if len(mean_dwell) != 2 or min(mean_dwell) <= 0:
            raise ValueError("mean_dwell is two positive dwell times")
        self.quiet_rate = quiet_rate
        self.burst_rate = burst_rate
        self.mean_dwell = (float(mean_dwell[0]), float(mean_dwell[1]))

    @property
    def mean_rate(self) -> float:
        dq, db = self.mean_dwell
        return (self.quiet_rate * dq + self.burst_rate * db) / (dq + db)

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        rates = (self.quiet_rate, self.burst_rate)
        out = np.empty(n)
        k = 0
        t = 0.0
        state = 0  # start quiet
        while k < n:
            dwell = float(rng.exponential(self.mean_dwell[state]))
            seg_end = t + dwell
            rate = rates[state]
            # emit this segment's Poisson arrivals gap by gap; the
            # first gap past seg_end hands over to the next state
            while k < n:
                gap = float(rng.exponential(1.0 / rate))
                if t + gap > seg_end:
                    break
                t += gap
                out[k] = t
                k += 1
            t = seg_end
            state = 1 - state
        return out

    def times_iter(self, rng: np.random.Generator) -> Iterator[float]:
        # same draw sequence as times(): dwell, then gap-by-gap
        # arrivals, with the first gap past seg_end handing over to
        # the next state.  (times() stops pulling after its n-th
        # output, so the first n yields here are draw-for-draw the
        # same values.)
        rates = (self.quiet_rate, self.burst_rate)
        t = 0.0
        state = 0  # start quiet
        while True:
            dwell = float(rng.exponential(self.mean_dwell[state]))
            seg_end = t + dwell
            rate = rates[state]
            while True:
                gap = float(rng.exponential(1.0 / rate))
                if t + gap > seg_end:
                    break
                t += gap
                yield t
            t = seg_end
            state = 1 - state

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "quiet_rate": self.quiet_rate,
            "burst_rate": self.burst_rate,
            "mean_dwell": list(self.mean_dwell),
        }


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson arrivals on a raised-cosine day curve.

    ``rate(t) = base_rate * (1 + (peak_ratio - 1) *
    (1 - cos(2 pi t / period)) / 2)`` — trough ``base_rate`` at t=0,
    peak ``base_rate * peak_ratio`` at ``period / 2``.  Sampled by
    Lewis-Shedler thinning against the peak rate, so the draws (and
    therefore the trace) are bit-reproducible for a given seed.
    """

    kind = "diurnal"

    def __init__(self, base_rate: float, peak_ratio: float = 4.0,
                 period: float = 1440.0):
        if base_rate <= 0 or period <= 0:
            raise ValueError("base_rate and period must be positive")
        if peak_ratio < 1.0:
            raise ValueError("peak_ratio must be >= 1")
        self.base_rate = base_rate
        self.peak_ratio = peak_ratio
        self.period = period

    def rate_at(self, t: float) -> float:
        swing = (self.peak_ratio - 1.0) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * t / self.period)
        )
        return self.base_rate * (1.0 + swing)

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        peak = self.base_rate * self.peak_ratio
        out = np.empty(n)
        t = 0.0
        k = 0
        while k < n:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() < self.rate_at(t) / peak:
                out[k] = t
                k += 1
        return out

    def times_iter(self, rng: np.random.Generator) -> Iterator[float]:
        peak = self.base_rate * self.peak_ratio
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() < self.rate_at(t) / peak:
                yield t

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "base_rate": self.base_rate,
            "peak_ratio": self.peak_ratio,
            "period": self.period,
        }


#: trace-header kind -> constructor (for replay-side reconstruction)
def process_from_description(desc: dict) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`describe` record."""
    kind = desc.get("kind")
    if kind == PoissonArrivals.kind:
        return PoissonArrivals(rate=desc["rate"])
    if kind == MMPPArrivals.kind:
        return MMPPArrivals(
            quiet_rate=desc["quiet_rate"], burst_rate=desc["burst_rate"],
            mean_dwell=tuple(desc["mean_dwell"]),
        )
    if kind == DiurnalArrivals.kind:
        return DiurnalArrivals(
            base_rate=desc["base_rate"], peak_ratio=desc["peak_ratio"],
            period=desc["period"],
        )
    raise ValueError(f"unknown arrival process kind {kind!r}")
