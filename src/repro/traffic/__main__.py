"""CLI: record open-loop traffic experiments, then verify replay.

``python -m repro.traffic --out DIR`` records one experiment per
requested arrival process (chaos + admission shedding active), then
replays each trace twice and verifies the fingerprints — shed
decisions and reasons, ``guard.*`` counters, completion order — are
bit-identical, and that regenerating the job stream from the recorded
generator parameters reproduces the trace.  Exits nonzero on any
divergence; this is the CI ``traffic-smoke`` entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.traffic.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.traffic.driver import (
    AdmissionSpec,
    ChaosSpec,
    OpenLoopDriver,
    record_experiment,
    verify_replay,
)
from repro.traffic.population import UserPopulation


def _process(kind: str, rate: float):
    if kind == "poisson":
        return PoissonArrivals(rate=rate)
    if kind == "mmpp":
        # same mean rate as the Poisson stream, carried burstily
        return MMPPArrivals(
            quiet_rate=rate * 0.5, burst_rate=rate * 3.0,
            mean_dwell=(10.0, 2.5),
        )
    if kind == "diurnal":
        return DiurnalArrivals(base_rate=rate * 0.4, peak_ratio=4.0,
                               period=200.0)
    raise SystemExit(f"unknown process {kind!r}")


def _replay_one(path: Path) -> int:
    """Replay a recorded trace; verify determinism (and, for tenant
    incident traces, the fingerprint recorded at dump time)."""
    from repro.traffic.trace import TrafficTrace

    meta = TrafficTrace.load(path).meta
    try:
        if "incident" in meta:
            from repro.tenant.recorder import verify_incident

            report = verify_incident(path)
            kind = f"incident ({meta['incident'].get('reason')})"
        else:
            report = verify_replay(path)
            kind = "experiment"
    except AssertionError as exc:
        print(f"[traffic] {path}: REPLAY FAILED: {exc}", file=sys.stderr)
        return 1
    fp = report.fingerprint()
    print(f"[traffic] {path}: {kind} replayed bit-exactly -- "
          f"completed={fp['completed']} shed={fp['shed']} "
          f"failures={fp['failures']}")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="record + replay-verify open-loop traffic runs",
    )
    ap.add_argument("--out", type=Path, default=None,
                    help="trace directory (default: a temp dir)")
    ap.add_argument("--replay", type=Path, default=None, metavar="TRACE",
                    help="replay one recorded trace (experiment or "
                         "tenant incident) and verify its fingerprint "
                         "instead of recording new experiments")
    ap.add_argument("--processes", default="poisson,mmpp",
                    help="comma list of poisson,mmpp,diurnal")
    ap.add_argument("--jobs", type=int, default=300)
    ap.add_argument("--gpus", type=int, default=4)
    ap.add_argument("--rate", type=float, default=0.5,
                    help="mean arrival rate (jobs per sim-time unit)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--chaos-mtbf", type=float, default=400.0,
                    help="fault-injector MTBF (0 disables chaos)")
    args = ap.parse_args(argv)

    if args.replay is not None:
        return _replay_one(args.replay)

    out = args.out
    if out is None:
        out = Path(tempfile.mkdtemp(prefix="repro-traffic-"))
    out.mkdir(parents=True, exist_ok=True)

    population = UserPopulation(
        n_users=50_000, seed=args.seed, mean_service=10.0,
        long_fraction=0.1, best_effort_fraction=0.3,
    )
    driver = OpenLoopDriver(
        n_gpus=args.gpus,
        policy="fcfs",
        admission=AdmissionSpec(
            max_queue=4 * args.gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=50.0,
        ),
        chaos=(
            None if args.chaos_mtbf <= 0
            else ChaosSpec(mtbf=args.chaos_mtbf, seed=args.seed)
        ),
    )

    failed = False
    for kind in [k.strip() for k in args.processes.split(",") if k.strip()]:
        process = _process(kind, args.rate)
        population.reset()
        path = out / f"{kind}.trace"
        trace, recorded = record_experiment(
            path, process, population, driver, n_jobs=args.jobs,
            arrival_seed=args.seed,
        )
        try:
            replayed = verify_replay(path)
        except AssertionError as exc:
            print(f"[traffic] {kind}: REPLAY FAILED: {exc}",
                  file=sys.stderr)
            failed = True
            continue
        if replayed.fingerprint() != recorded.fingerprint():
            print(f"[traffic] {kind}: replay fingerprint differs from "
                  "the recorded run", file=sys.stderr)
            failed = True
            continue
        fp = recorded.fingerprint()
        print(f"[traffic] {kind}: {len(trace)} jobs -> "
              f"completed={fp['completed']} shed={fp['shed']} "
              f"dropped={fp['dropped']} failures={fp['failures']} "
              f"p50_turnaround={recorded.p50_turnaround:.2f} "
              f"p99_turnaround={recorded.p99_turnaround:.2f} "
              f"shed_rate={recorded.shed_rate:.3f} -- replay OK")
        (out / f"{kind}.fingerprint.json").write_text(
            json.dumps(fp, sort_keys=True, indent=2) + "\n"
        )
    if failed:
        return 1
    print(f"[traffic] all traces replayed bit-exactly ({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
