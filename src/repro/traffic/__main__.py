"""CLI: record open-loop traffic experiments, then verify replay.

``python -m repro.traffic --out DIR`` records one experiment per
requested arrival process (chaos + admission shedding active), then
replays each trace twice and verifies the fingerprints — shed
decisions and reasons, ``guard.*`` counters, completion order — are
bit-identical, and that regenerating the job stream from the recorded
generator parameters reproduces the trace.  Exits nonzero on any
divergence; this is the CI ``traffic-smoke`` entry point.

Two subcommands extend it (the bare flag form above is preserved):

``python -m repro.traffic capture --out TRACE [--jobs N | --horizon T]``
    Run one experiment with a live capture tap attached — the trace
    grows on disk *during* the run and is sealed with the final
    fingerprint.  ``--horizon`` (without ``--jobs``) captures from a
    lazy generator-fed stream that never materializes the job list.

``python -m repro.traffic ab TRACE [--variant NAME:k=v,...] ...``
    Replay a captured trace under its recorded config (checking the
    fingerprint against the sealed trailer — exits nonzero on
    same-config divergence) and against each variant config,
    printing the structured diff report.  ``--allow-torn`` accepts a
    mid-capture-killed trace and replays its committed prefix.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.traffic.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.traffic.driver import (
    AdmissionSpec,
    ChaosSpec,
    OpenLoopDriver,
    record_experiment,
    verify_replay,
)
from repro.traffic.population import UserPopulation


def _process(kind: str, rate: float):
    if kind == "poisson":
        return PoissonArrivals(rate=rate)
    if kind == "mmpp":
        # same mean rate as the Poisson stream, carried burstily
        return MMPPArrivals(
            quiet_rate=rate * 0.5, burst_rate=rate * 3.0,
            mean_dwell=(10.0, 2.5),
        )
    if kind == "diurnal":
        return DiurnalArrivals(base_rate=rate * 0.4, peak_ratio=4.0,
                               period=200.0)
    raise SystemExit(f"unknown process {kind!r}")


def _replay_one(path: Path) -> int:
    """Replay a recorded trace; verify determinism (and, for tenant
    incident traces, the fingerprint recorded at dump time)."""
    from repro.traffic.trace import TrafficTrace

    meta = TrafficTrace.load(path).meta
    try:
        if "incident" in meta:
            from repro.tenant.recorder import verify_incident

            report = verify_incident(path)
            kind = f"incident ({meta['incident'].get('reason')})"
        else:
            report = verify_replay(path)
            kind = "experiment"
    except AssertionError as exc:
        print(f"[traffic] {path}: REPLAY FAILED: {exc}", file=sys.stderr)
        return 1
    fp = report.fingerprint()
    print(f"[traffic] {path}: {kind} replayed bit-exactly -- "
          f"completed={fp['completed']} shed={fp['shed']} "
          f"failures={fp['failures']}")
    return 0


def _split_top_level(spec: str) -> list:
    """Split on commas outside JSON braces/brackets (variant specs
    like ``tight:admission={"max_queue":4},policy=sjf``)."""
    parts, depth, cur = [], 0, []
    for ch in spec:
        if ch in "{[":
            depth += 1
        elif ch in "}]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return parts


def _parse_variant(spec: str):
    """``NAME:key=val,...`` (or just ``key=val,...``) -> ABVariant."""
    from repro.traffic.ab import ABVariant

    name = None
    body = spec
    head, sep, rest = spec.partition(":")
    if sep and "=" not in head:
        name, body = head.strip(), rest
    overrides = {}
    for assign in _split_top_level(body):
        key, sep, val = assign.partition("=")
        if not sep:
            raise SystemExit(
                f"bad variant assignment {assign!r} (want key=value)"
            )
        try:
            overrides[key.strip()] = json.loads(val)
        except json.JSONDecodeError:
            overrides[key.strip()] = val.strip()
    if not overrides:
        raise SystemExit(f"variant {spec!r} has no overrides")
    if name is None:
        name = ",".join(f"{k}={overrides[k]}" for k in overrides)
    return ABVariant(name=name, overrides=overrides)


def capture_main(argv) -> int:
    from repro.traffic.capture import capture_experiment

    ap = argparse.ArgumentParser(
        prog="python -m repro.traffic capture",
        description="record a trace from a live in-flight run",
    )
    ap.add_argument("--out", type=Path, required=True, metavar="TRACE")
    ap.add_argument("--process", default="poisson",
                    choices=["poisson", "mmpp", "diurnal"])
    ap.add_argument("--jobs", type=int, default=None,
                    help="materialized batch capture of N jobs")
    ap.add_argument("--horizon", type=float, default=None,
                    help="streamed capture to this horizon (jobs "
                         "pulled lazily, never materialized)")
    ap.add_argument("--gpus", type=int, default=4)
    ap.add_argument("--rate", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--policy", default="fcfs")
    ap.add_argument("--chaos-mtbf", type=float, default=400.0)
    ap.add_argument("--sync", action="store_true",
                    help="fsync every frame (incident-recorder mode)")
    ap.add_argument("--flush-every", type=int, default=64)
    ap.add_argument("--no-decisions", action="store_true",
                    help="capture only the job stream")
    args = ap.parse_args(argv)
    if (args.jobs is None) == (args.horizon is None):
        raise SystemExit("pass exactly one of --jobs / --horizon")

    population = UserPopulation(
        n_users=50_000, seed=args.seed, mean_service=10.0,
        long_fraction=0.1, best_effort_fraction=0.3,
    )
    driver = OpenLoopDriver(
        n_gpus=args.gpus,
        policy=args.policy,
        admission=AdmissionSpec(
            max_queue=4 * args.gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=50.0,
        ),
        chaos=(
            None if args.chaos_mtbf <= 0
            else ChaosSpec(mtbf=args.chaos_mtbf, seed=args.seed)
        ),
        horizon=args.horizon,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    trace, report = capture_experiment(
        args.out, _process(args.process, args.rate), population, driver,
        n_jobs=args.jobs, arrival_seed=args.seed, sync=args.sync,
        decisions=not args.no_decisions, flush_every=args.flush_every,
    )
    fp = report.fingerprint()
    mode = "batch" if args.jobs is not None else "stream"
    print(f"[traffic] captured {len(trace)} jobs ({mode}) -> "
          f"{args.out}: completed={fp['completed']} shed={fp['shed']} "
          f"failures={fp['failures']} sealed=True")
    return 0


def ab_main(argv) -> int:
    from repro.traffic.ab import ABVariant, ab_replay

    ap = argparse.ArgumentParser(
        prog="python -m repro.traffic ab",
        description="A/B differential replay of one captured trace",
    )
    ap.add_argument("trace", type=Path)
    ap.add_argument("--variant", action="append", default=[],
                    metavar="NAME:k=v,...",
                    help="driver-description overrides (repeatable); "
                         "default: sjf policy + half the GPUs")
    ap.add_argument("--backend", default="serial",
                    help="repro.par backend for the variant fan-out")
    ap.add_argument("--json", type=Path, default=None, metavar="OUT",
                    help="also write the full report as JSON")
    ap.add_argument("--allow-torn", action="store_true",
                    help="replay the committed prefix of an unsealed "
                         "(mid-capture-killed) trace")
    args = ap.parse_args(argv)

    variants = [_parse_variant(s) for s in args.variant]
    try:
        if not variants:
            from repro.traffic.trace import TrafficTrace

            base = TrafficTrace.load(
                args.trace, strict=not args.allow_torn
            ).meta.get("driver", {})
            variants = [
                ABVariant("sjf", {"policy": "sjf"}),
                ABVariant("half_gpus",
                          {"n_gpus": max(1, base.get("n_gpus", 2) // 2)}),
            ]
        report = ab_replay(args.trace, variants, backend=args.backend,
                           strict=not args.allow_torn)
    except ValueError as exc:
        print(f"[traffic] ab: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if report.fingerprint_matched is True:
        print("[traffic] baseline replay matches the sealed trailer "
              "fingerprint")
    elif report.fingerprint_matched is None:
        print("[traffic] no sealed trailer (torn/v1 trace): baseline "
              f"checked replay-vs-replay only "
              f"(self_consistent={report.self_consistent})")
    if args.json is not None:
        args.json.write_text(
            json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n"
        )
    if report.diverged:
        print("[traffic] ab: SAME-CONFIG DIVERGENCE — replay does not "
              "reproduce the recorded run", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "capture":
        return capture_main(argv[1:])
    if argv and argv[0] == "ab":
        return ab_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="record + replay-verify open-loop traffic runs",
    )
    ap.add_argument("--out", type=Path, default=None,
                    help="trace directory (default: a temp dir)")
    ap.add_argument("--replay", type=Path, default=None, metavar="TRACE",
                    help="replay one recorded trace (experiment or "
                         "tenant incident) and verify its fingerprint "
                         "instead of recording new experiments")
    ap.add_argument("--processes", default="poisson,mmpp",
                    help="comma list of poisson,mmpp,diurnal")
    ap.add_argument("--jobs", type=int, default=300)
    ap.add_argument("--gpus", type=int, default=4)
    ap.add_argument("--rate", type=float, default=0.5,
                    help="mean arrival rate (jobs per sim-time unit)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--chaos-mtbf", type=float, default=400.0,
                    help="fault-injector MTBF (0 disables chaos)")
    args = ap.parse_args(argv)

    if args.replay is not None:
        return _replay_one(args.replay)

    out = args.out
    if out is None:
        out = Path(tempfile.mkdtemp(prefix="repro-traffic-"))
    out.mkdir(parents=True, exist_ok=True)

    population = UserPopulation(
        n_users=50_000, seed=args.seed, mean_service=10.0,
        long_fraction=0.1, best_effort_fraction=0.3,
    )
    driver = OpenLoopDriver(
        n_gpus=args.gpus,
        policy="fcfs",
        admission=AdmissionSpec(
            max_queue=4 * args.gpus, protect_priority=2,
            breaker_failure_threshold=3, breaker_recovery_time=50.0,
        ),
        chaos=(
            None if args.chaos_mtbf <= 0
            else ChaosSpec(mtbf=args.chaos_mtbf, seed=args.seed)
        ),
    )

    failed = False
    for kind in [k.strip() for k in args.processes.split(",") if k.strip()]:
        process = _process(kind, args.rate)
        population.reset()
        path = out / f"{kind}.trace"
        trace, recorded = record_experiment(
            path, process, population, driver, n_jobs=args.jobs,
            arrival_seed=args.seed,
        )
        try:
            replayed = verify_replay(path)
        except AssertionError as exc:
            print(f"[traffic] {kind}: REPLAY FAILED: {exc}",
                  file=sys.stderr)
            failed = True
            continue
        if replayed.fingerprint() != recorded.fingerprint():
            print(f"[traffic] {kind}: replay fingerprint differs from "
                  "the recorded run", file=sys.stderr)
            failed = True
            continue
        fp = recorded.fingerprint()
        print(f"[traffic] {kind}: {len(trace)} jobs -> "
              f"completed={fp['completed']} shed={fp['shed']} "
              f"dropped={fp['dropped']} failures={fp['failures']} "
              f"p50_turnaround={recorded.p50_turnaround:.2f} "
              f"p99_turnaround={recorded.p99_turnaround:.2f} "
              f"shed_rate={recorded.shed_rate:.3f} -- replay OK")
        (out / f"{kind}.fingerprint.json").write_text(
            json.dumps(fp, sort_keys=True, indent=2) + "\n"
        )
    if failed:
        return 1
    print(f"[traffic] all traces replayed bit-exactly ({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
