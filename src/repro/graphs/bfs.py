"""Level-synchronous BFS with Graph500 validation and TEPS measurement.

The traversal is the standard frontier-expansion algorithm, fully
vectorized: gather the neighbor lists of the current frontier, keep
unvisited targets, record parents, repeat.  Validation implements the
Graph500 result checks: the parent array forms a tree rooted at the
source, tree edges exist in the graph, and BFS levels of adjacent
reachable vertices differ by at most one.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def build_csr(edges: np.ndarray, n_vertices: int) -> sp.csr_matrix:
    """Symmetrized, dedup'd CSR adjacency from an edge list."""
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be (m, 2)")
    src, dst = edges[:, 0], edges[:, 1]
    if src.min(initial=0) < 0 or max(src.max(initial=0),
                                     dst.max(initial=0)) >= n_vertices:
        raise ValueError("edge endpoint outside vertex range")
    keep = src != dst  # drop self loops
    src, dst = src[keep], dst[keep]
    data = np.ones(2 * src.size, dtype=np.int8)
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n_vertices, n_vertices))
    adj.data[:] = 1  # dedup multiplicities
    adj.sum_duplicates()
    return adj


def bfs_csr(adj: sp.csr_matrix, source: int
            ) -> Tuple[np.ndarray, np.ndarray, int]:
    """BFS from *source*.

    Returns (parents, levels, edges_traversed).  Unreached vertices
    get parent/level -1.  ``edges_traversed`` counts every adjacency
    inspection (the Graph500 TEPS numerator counts input edges of the
    traversed component; we count directed inspections and report both
    via the caller).
    """
    n = adj.shape[0]
    if not (0 <= source < n):
        raise ValueError("source out of range")
    parents = np.full(n, -1, dtype=np.int64)
    levels = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    edges_traversed = 0
    level = 0
    indptr, indices = adj.indptr, adj.indices
    while frontier.size:
        level += 1
        # gather all neighbors of the frontier
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        edges_traversed += int(counts.sum())
        if counts.sum() == 0:
            break
        # flatten neighbor lists with their source vertices
        reps = np.repeat(frontier, counts)
        gather_idx = _ranges(starts, counts)
        nbrs = indices[gather_idx]
        fresh = levels[nbrs] == -1
        nbrs, reps = nbrs[fresh], reps[fresh]
        if nbrs.size == 0:
            break
        # first writer wins (np.unique keeps the first occurrence)
        uniq, first = np.unique(nbrs, return_index=True)
        parents[uniq] = reps[first]
        levels[uniq] = level
        frontier = uniq
    return parents, levels, edges_traversed


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ranges [starts[i], starts[i]+counts[i]), vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # position within each run = global position - run start position
    run_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - run_starts
    return np.repeat(starts, counts) + within


def validate_bfs(adj: sp.csr_matrix, source: int, parents: np.ndarray,
                 levels: np.ndarray) -> None:
    """Graph500 validation rules; raises AssertionError on violation."""
    n = adj.shape[0]
    assert parents[source] == source and levels[source] == 0
    reached = np.flatnonzero(levels >= 0)
    # 1. parent of every reached (non-root) vertex is reached, one
    #    level up, and connected by a real edge
    for v in reached:
        if v == source:
            continue
        p = parents[v]
        assert p >= 0, f"reached vertex {v} has no parent"
        assert levels[v] == levels[p] + 1, f"level break at {v}"
        row = adj.indices[adj.indptr[v]:adj.indptr[v + 1]]
        assert p in row, f"tree edge ({p},{v}) not in graph"
    # 2. adjacent reachable vertices differ by at most one level
    coo = adj.tocoo()
    both = (levels[coo.row] >= 0) & (levels[coo.col] >= 0)
    diffs = np.abs(levels[coo.row[both]] - levels[coo.col[both]])
    assert diffs.max(initial=0) <= 1, "level gap > 1 across an edge"
    # 3. unreached vertices have no reached neighbors
    cross = (levels[coo.row] >= 0) != (levels[coo.col] >= 0)
    assert not cross.any(), "unreached vertex adjacent to the tree"


def measured_teps(adj: sp.csr_matrix, n_sources: int = 4, seed: int = 0
                  ) -> float:
    """Mean traversed-edges-per-second over random sources (real time)."""
    rng = np.random.default_rng(seed)
    n = adj.shape[0]
    degrees = np.diff(adj.indptr)
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise ValueError("graph has no edges")
    rates = []
    for _ in range(n_sources):
        src = int(rng.choice(candidates))
        t0 = time.perf_counter()
        _, _, traversed = bfs_csr(adj, src)
        dt = time.perf_counter() - t0
        rates.append(traversed / max(dt, 1e-9))
    return float(np.mean(rates))
