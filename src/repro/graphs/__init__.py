"""HavoqGT proxy: large-scale graph analytics on NVMe (§4.4, Table 2).

"Data science work on the graph code HavoqGT demonstrated the value of
NVMe to applications ... Using the 1.6 TB of NVMe on each node and
CPUs for compute we can run larger graph problems faster."  Table 2
records the historically best (scale, GTEPS) pairs per machine.

- :mod:`repro.graphs.rmat` — Graph500-style Kronecker (R-MAT) edge
  generator.
- :mod:`repro.graphs.bfs` — level-synchronous BFS over CSR adjacency
  with the Graph500 validation rules and real TEPS measurement.
- :mod:`repro.graphs.scaling` — the machine-level model: per-node
  traversal rate from the storage tier that must hold the graph
  (DRAM vs NVMe, or infeasible), with a distributed-communication
  penalty — reproduces Table 2's scales and GTEPS.
"""

from repro.graphs.rmat import rmat_edges
from repro.graphs.bfs import bfs_csr, build_csr, validate_bfs, measured_teps
from repro.graphs.scaling import (
    graph_bytes,
    max_scale,
    modeled_gteps,
    storage_tier,
    table2_row,
)

__all__ = [
    "rmat_edges",
    "build_csr",
    "bfs_csr",
    "validate_bfs",
    "measured_teps",
    "graph_bytes",
    "storage_tier",
    "max_scale",
    "modeled_gteps",
    "table2_row",
]
