"""Machine-level graph-traversal model: Table 2.

The per-node traversal rate of a semi-external BFS is set by the random
-read throughput of the tier the graph must live in (DRAM when it
fits, NVMe otherwise), divided by the bytes touched per traversed
edge.  Distributing the traversal adds frontier-exchange overhead that
grows with node count.  Two documented calibration constants
(:data:`TRAVERSAL_EFFICIENCY`, :data:`BYTES_PER_EDGE`) plus a
distributed penalty slope (:data:`DISTRIBUTED_PENALTY`) reproduce all
six Table 2 rows to within tens of percent (EXPERIMENTS.md records the
row-by-row comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.graphs.rmat import EDGE_FACTOR

#: CSR bytes per undirected input edge (ids + offsets + visited bits)
GRAPH_BYTES_PER_EDGE = 10.0

#: bytes touched per traversed edge (neighbor id + visited check,
#: cache-line amortized)
BYTES_PER_EDGE = 16.0

#: achievable fraction of tier bandwidth under BFS's access pattern
TRAVERSAL_EFFICIENCY = 0.7

#: distributed penalty = 1 + slope * log2(nodes)
DISTRIBUTED_PENALTY = 0.5


def graph_bytes(scale: int, edge_factor: int = EDGE_FACTOR) -> float:
    """Storage footprint of a scale-``scale`` Graph500 graph."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return GRAPH_BYTES_PER_EDGE * edge_factor * float(2**scale)


def storage_tier(machine: Machine, nodes: int, scale: int) -> str:
    """Which tier holds the graph: 'dram', 'nvme', or raises."""
    if nodes < 1 or nodes > machine.max_nodes:
        raise ValueError(
            f"nodes must be in 1..{machine.max_nodes} for {machine.name}"
        )
    per_node = graph_bytes(scale) / nodes
    if per_node <= 0.9 * machine.node_mem_bytes:
        return "dram"
    if machine.nvme_bytes and per_node <= 0.9 * machine.nvme_bytes:
        return "nvme"
    raise ValueError(
        f"scale {scale} does not fit on {nodes} {machine.name} node(s)"
    )


def max_scale(machine: Machine, nodes: Optional[int] = None) -> int:
    """Largest feasible Graph500 scale on *nodes* nodes."""
    nodes = machine.max_nodes if nodes is None else nodes
    scale = 1
    while True:
        try:
            storage_tier(machine, nodes, scale + 1)
            scale += 1
        except ValueError:
            return scale


def modeled_gteps(machine: Machine, nodes: int, scale: int) -> float:
    """Modeled harmonic-mean GTEPS for the configuration."""
    tier = storage_tier(machine, nodes, scale)
    if tier == "dram":
        # random access into DRAM: a modest fraction of STREAM bw
        tier_bw = 0.25 * machine.cpu_mem_bw
    else:
        tier_bw = machine.nvme_bw
    per_node_teps = tier_bw * TRAVERSAL_EFFICIENCY / BYTES_PER_EDGE
    penalty = 1.0 + DISTRIBUTED_PENALTY * np.log2(nodes) if nodes > 1 else 1.0
    return nodes * per_node_teps / penalty / 1e9


#: Table 2 configurations: machine name -> (year, nodes, scale, paper GTEPS)
TABLE2: Dict[str, Tuple[int, int, int, float]] = {
    "kraken": (2011, 1, 34, 0.053),
    "leviathan": (2011, 1, 36, 0.053),
    "hyperion": (2011, 64, 36, 0.601),
    "bertha": (2014, 1, 37, 0.054),
    "catalyst": (2014, 300, 40, 4.175),
    "sierra": (2018, 2048, 42, 67.258),
}


def table2_row(machine_name: str) -> Dict[str, float]:
    """Reproduce one Table 2 row: modeled vs paper GTEPS."""
    if machine_name not in TABLE2:
        raise KeyError(f"no Table 2 row for {machine_name!r}")
    year, nodes, scale, paper = TABLE2[machine_name]
    machine = get_machine(machine_name)
    modeled = modeled_gteps(machine, nodes, scale)
    return {
        "year": year,
        "nodes": nodes,
        "scale": scale,
        "paper_gteps": paper,
        "modeled_gteps": modeled,
        "ratio": modeled / paper,
    }
