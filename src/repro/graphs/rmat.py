"""Graph500-style R-MAT (Kronecker) edge generation.

Standard recursive-quadrant sampling with the Graph500 parameters
(a, b, c, d) = (0.57, 0.19, 0.19, 0.05): each of ``scale`` bits of the
source/destination ids is drawn by picking a quadrant, producing the
skewed degree distribution real social/web graphs show.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.rng import make_rng

GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)
EDGE_FACTOR = 16


def rmat_edges(
    scale: int,
    edge_factor: int = EDGE_FACTOR,
    params: Tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``edge_factor * 2^scale`` edges, shape (m, 2).

    Vertex ids are in ``[0, 2^scale)``.  Self-loops and duplicates are
    allowed, as in the Graph500 generator (the CSR builder dedups).
    """
    if scale < 1 or scale > 30:
        raise ValueError("scale must be in 1..30 for in-memory generation")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    a, b, c, d = params
    if abs(a + b + c + d - 1.0) > 1e-9 or min(a, b, c, d) <= 0:
        raise ValueError("params must be positive and sum to 1")
    rng = make_rng(seed)
    m = edge_factor * (1 << scale)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    # Graph500 permutes vertex labels to hide locality
    perm = rng.permutation(1 << scale)
    return np.stack([perm[src], perm[dst]], axis=1)
