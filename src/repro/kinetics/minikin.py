"""minikin: batched multi-zone kinetics with two threading strategies.

The mini-app solves populations for many hydrodynamic zones (each with
its own temperature/density).  The paper's two strategies (§4.3):

- **CPU, thread-per-zone** — each thread holds a private zone working
  set (rate matrix + the frequency-resolved transition workspace the
  opacity calculation needs).  For large models that private memory
  exceeds what the node can give every core: "memory constraints
  require idling 60% of CPU cores" for the largest model.
- **GPU, thread-per-transition** — fine-grained threading inside one
  zone; "only needs enough GPU memory to process one zone".

:func:`node_throughput` prices both strategies on a machine from the
catalog.  Two documented calibration constants set the achievable
fraction of peak for the population solves (batched small-matrix LU on
GPUs runs far below peak; cache-blocked LAPACK on CPUs does well) —
EXPERIMENTS.md records their provenance and the resulting 5.75X check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.machine import Machine
from repro.core.memory import AllocationError, MemorySpace, ResourceManager
from repro.kinetics.atomicmodel import AtomicModel
from repro.kinetics.ratematrix import (
    assemble_rate_matrix,
    opacity_spectrum,
    steady_state_populations,
)
from repro.kinetics.rates import rate_kernel_flops
from repro.par import Backend, SharedArray, ShmStage, get_backend, map_fanout

#: frequency bins in the opacity workspace (drives per-zone memory)
N_FREQ_BINS = 7000

#: achievable fraction of peak for the per-zone work
CE_CPU_SOLVE = 0.45   # cache-blocked dense solve + vectorized rates
CE_GPU_SOLVE = 0.082  # batched small-matrix LU + transition threads

#: fraction of node DRAM available to zone working sets
MEM_USABLE_FRAC = 0.9


@dataclass(frozen=True)
class Zone:
    """One hydrodynamic zone's plasma conditions."""

    t_e: float
    n_e: float

    def __post_init__(self) -> None:
        if self.t_e <= 0 or self.n_e <= 0:
            raise ValueError("zone conditions must be positive")


def zone_memory_bytes(model: AtomicModel,
                      n_freq_bins: int = N_FREQ_BINS) -> int:
    """Private working set of one zone's solve: dense matrix workspace
    plus the frequency-resolved transition arrays."""
    spectral = 8 * model.n_transitions * n_freq_bins
    return model.zone_working_set_bytes() + spectral


def zone_flops(model: AtomicModel, n_freq_bins: int = N_FREQ_BINS) -> float:
    """Work of one zone: rates + LU solve + opacity accumulation."""
    n = model.n_levels
    lu = (2.0 / 3.0) * n**3
    opacity = 2.0 * model.n_transitions * n_freq_bins
    return rate_kernel_flops(model) + lu + opacity


def _solve_zone_task(args):
    """One zone's population solve (pure — the fan-out unit).

    The model's arrays arrive as :class:`SharedArray` handles, so a
    process fan-out maps the oscillator-strength matrix once instead
    of pickling it per chunk.
    """
    name, se, sg, sf, t_e, n_e, solver, include_radiative = args
    model = AtomicModel(name, se.asarray(), sg.asarray(), sf.asarray())
    r = assemble_rate_matrix(model, t_e, n_e,
                             include_radiative=include_radiative)
    return steady_state_populations(r, solver=solver)


def _share_model(model: AtomicModel, stage: ShmStage
                 ) -> Tuple[SharedArray, SharedArray, SharedArray]:
    return (
        stage.share(model.energies),
        stage.share(model.degeneracies),
        stage.share(model.oscillator_strengths),
    )


class Minikin:
    """Multi-zone population/opacity solver (the real computation).

    ``resources`` optionally enforces a device-capacity limit — used by
    tests to show the GPU strategy fits where thread-per-zone cannot.
    """

    def __init__(self, model: AtomicModel,
                 resources: Optional[ResourceManager] = None):
        self.model = model
        self.resources = resources

    def solve_zone(self, zone: Zone, solver: str = "direct",
                   include_radiative: bool = True) -> np.ndarray:
        r = assemble_rate_matrix(self.model, zone.t_e, zone.n_e,
                                 include_radiative=include_radiative)
        return steady_state_populations(r, solver=solver)

    def solve_zones(self, zones: List[Zone], solver: str = "direct",
                    backend: Union[None, str, Backend] = None,
                    ) -> np.ndarray:
        """Populations for every zone, shape (n_zones, n_levels).

        The working-set allocation (the GPU threading strategy's
        memory profile) stays in the parent; the per-zone solves —
        independent by construction — fan out over *backend* with
        bit-identical populations on every backend.
        """
        if not zones:
            raise ValueError("no zones given")
        workspace = None
        if self.resources is not None:
            workspace = self.resources.allocate(
                (self.model.n_levels, self.model.n_levels),
                space=MemorySpace.DEVICE, name="zone-workspace",
            )
        be = get_backend(backend)
        try:
            with ShmStage(be.kind) as stage:
                se, sg, sf = _share_model(self.model, stage)
                pops = map_fanout(
                    _solve_zone_task,
                    [(self.model.name, se, sg, sf, z.t_e, z.n_e, solver,
                      True) for z in zones],
                    backend=be,
                )
        finally:
            if workspace is not None:
                workspace.free()
        return np.stack(pops)

    def opacities(self, zones: List[Zone], freqs: np.ndarray,
                  solver: str = "direct",
                  backend: Union[None, str, Backend] = None) -> np.ndarray:
        pops = self.solve_zones(zones, solver=solver, backend=backend)
        return np.stack(
            [opacity_spectrum(self.model, p, freqs) for p in pops]
        )


def sweep_conditions(
    model: AtomicModel,
    t_e_values: Sequence[float],
    n_e_values: Sequence[float],
    solver: str = "direct",
    backend: Union[None, str, Backend] = None,
) -> np.ndarray:
    """Populations over the Cartesian (T_e, n_e) condition grid.

    The design-sweep pattern of the paper's workload: one independent
    zone solve per grid point, fanned out over *backend*.  Returns an
    array of shape ``(len(t_e_values), len(n_e_values), n_levels)``
    that is bit-exact across backends.
    """
    t_e_values = list(t_e_values)
    n_e_values = list(n_e_values)
    if not t_e_values or not n_e_values:
        raise ValueError("empty sweep grid")
    zones = [Zone(t_e=t, n_e=n) for t in t_e_values for n in n_e_values]
    pops = Minikin(model).solve_zones(zones, solver=solver, backend=backend)
    return pops.reshape(len(t_e_values), len(n_e_values), model.n_levels)


def cpu_usable_threads(machine: Machine, model: AtomicModel,
                       n_freq_bins: int = N_FREQ_BINS) -> int:
    """Threads the CPU strategy can actually run, memory-limited."""
    per_thread = zone_memory_bytes(model, n_freq_bins)
    budget = machine.node_mem_bytes * MEM_USABLE_FRAC
    return int(min(machine.total_cores, max(1, budget // per_thread)))


def node_throughput(
    machine: Machine,
    model: AtomicModel,
    strategy: str,
    n_freq_bins: int = N_FREQ_BINS,
    cpu_parallel_efficiency: float = 0.8,
) -> Dict[str, float]:
    """Zones/second for a threading strategy on *machine*.

    Returns a dict with ``throughput`` plus diagnostic fields
    (``threads``, ``idle_fraction`` for CPU; ``zone_bytes`` for GPU).
    """
    flops = zone_flops(model, n_freq_bins)
    if strategy == "cpu":
        threads = cpu_usable_threads(machine, model, n_freq_bins)
        core_peak = machine.cpu.peak_flops_per_core
        t_zone = flops / (core_peak * CE_CPU_SOLVE)
        eff_threads = threads * (
            cpu_parallel_efficiency if threads > 1 else 1.0
        )
        return {
            "throughput": eff_threads / t_zone,
            "threads": float(threads),
            "idle_fraction": 1.0 - threads / machine.total_cores,
        }
    if strategy == "gpu":
        if machine.gpu is None:
            raise ValueError(f"{machine.name} has no GPUs")
        zone_bytes = zone_memory_bytes(model, n_freq_bins)
        if zone_bytes > machine.gpu.mem_bytes:
            raise AllocationError(
                f"one zone ({zone_bytes / 2**30:.1f} GiB) exceeds GPU memory"
            )
        t_zone = flops / (machine.gpu.peak_flops * CE_GPU_SOLVE)
        t_zone += 20 * machine.gpu.launch_overhead  # kernel sequence
        return {
            "throughput": machine.gpus_per_node / t_zone,
            "zone_bytes": float(zone_bytes),
            "idle_fraction": 0.0,
        }
    raise ValueError("strategy must be 'cpu' or 'gpu'")


def gpu_speedup(machine: Machine, model: AtomicModel,
                n_freq_bins: int = N_FREQ_BINS) -> float:
    """Node-level GPU/CPU throughput ratio (§4.3's 5.75X metric)."""
    gpu = node_throughput(machine, model, "gpu", n_freq_bins)
    cpu = node_throughput(machine, model, "cpu", n_freq_bins)
    return gpu["throughput"] / cpu["throughput"]
