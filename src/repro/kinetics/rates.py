"""Transition-rate kernels.

Cretin's exploration phase built one mini-app per rate type because
"each type posed a different parallelization issue for GPUs" (§4.3).
The three types here have exactly that character:

- :func:`collisional_excitation` — dense upper-triangle work scaling
  with electron density and a Boltzmann factor (van Regemorter form);
  vectorizes over all transitions at once.
- :func:`collisional_deexcitation` — derived from excitation by
  detailed balance, making Boltzmann equilibrium an *exact* invariant
  of the collisional system (the key physics test).
- :func:`radiative_decay` — spontaneous A-coefficients; density- and
  temperature-independent, downward-only.

All kernels return full (n, n) rate matrices R[i, j] = rate of j -> i
transitions per unit population of j (column-stochastic convention
before diagonal fill).
"""

from __future__ import annotations

import numpy as np

from repro.kinetics.atomicmodel import AtomicModel

#: scaling constants (dimensionless model units)
C_EXC = 1.0
C_RAD = 0.1


def _gaps(model: AtomicModel) -> np.ndarray:
    """Positive energy gaps E_j - E_i on the upper triangle (i<j)."""
    e = model.energies
    return e[None, :] - e[:, None]


def collisional_excitation(model: AtomicModel, t_e: float, n_e: float
                           ) -> np.ndarray:
    """Rates for i -> j (absorbing energy), i < j.

    R[j, i] receives the upward rate: van-Regemorter-like
    ``n_e * f_ij * exp(-dE/T) / (dE * sqrt(T))``.
    """
    if t_e <= 0 or n_e <= 0:
        raise ValueError("temperature and density must be positive")
    gaps = _gaps(model)
    f = model.oscillator_strengths
    up = np.zeros_like(f)
    mask = f > 0
    up[mask] = (
        C_EXC * n_e * f[mask] * np.exp(-gaps[mask] / t_e)
        / (np.maximum(gaps[mask], 1e-12) * np.sqrt(t_e))
    )
    # R[j, i] = rate from i to j: transpose the (i, j) upper triangle
    return up.T.copy()


def collisional_deexcitation(model: AtomicModel, t_e: float, n_e: float
                             ) -> np.ndarray:
    """Downward collisional rates from detailed balance.

    R[i, j] = R_up[j, i] * (g_i / g_j) * exp(dE / T): guarantees that
    pure collisional equilibrium is exactly Boltzmann.
    """
    up = collisional_excitation(model, t_e, n_e)  # R[j, i], i<j
    g = model.degeneracies
    gaps = _gaps(model)  # gaps[i, j] = E_j - E_i > 0 for i < j
    down = np.zeros_like(up)
    iu, ju = np.triu_indices(model.n_levels, k=1)
    up_rates = up[ju, iu]
    mask = up_rates > 0
    down[iu[mask], ju[mask]] = (
        up_rates[mask] * (g[iu[mask]] / g[ju[mask]])
        * np.exp(gaps[iu[mask], ju[mask]] / t_e)
    )
    return down


def radiative_decay(model: AtomicModel) -> np.ndarray:
    """Spontaneous decay rates A_ji ~ f_ij * dE^2, j -> i downward."""
    gaps = _gaps(model)
    f = model.oscillator_strengths
    a = np.zeros_like(f)
    iu, ju = np.triu_indices(model.n_levels, k=1)
    mask = f[iu, ju] > 0
    a[iu[mask], ju[mask]] = (
        C_RAD * f[iu[mask], ju[mask]] * gaps[iu[mask], ju[mask]] ** 2
    )
    return a


def rate_kernel_flops(model: AtomicModel) -> float:
    """Approximate flop count of one zone's full rate evaluation."""
    return 12.0 * model.n_transitions * 3  # three rate types
