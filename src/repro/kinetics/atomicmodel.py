"""Synthetic atomic models for the kinetics solver.

Real Cretin models are proprietary tabulations; we generate
screened-hydrogenic-flavored synthetic models (DESIGN.md substitution):
level energies follow a hydrogenic ladder with random splittings,
degeneracies follow shell statistics, and oscillator strengths decay
with energy gap.  What matters downstream — matrix size, spectral
structure, memory footprint scaling with the square of level count —
is preserved.

The paper's four model sizes ("our second largest atomic model", "the
largest atomic model" whose memory footprint idles 60% of CPU cores)
are encoded in :data:`MODEL_SIZES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.util.rng import make_rng

#: paper-inspired size classes: levels per model
MODEL_SIZES: Dict[str, int] = {
    "small": 30,
    "medium": 120,
    "large": 400,
    "xlarge": 1200,
}


@dataclass(frozen=True)
class AtomicModel:
    """An atomic model: levels plus dipole-allowed transition data.

    Attributes
    ----------
    name:
        Size-class label.
    energies:
        Level energies in temperature units, ascending, shape (n,).
    degeneracies:
        Statistical weights g_i, shape (n,).
    oscillator_strengths:
        f_ij >= 0 for i < j (upper triangle), shape (n, n); zero where
        the transition is forbidden.
    """

    name: str
    energies: np.ndarray
    degeneracies: np.ndarray
    oscillator_strengths: np.ndarray

    def __post_init__(self) -> None:
        n = self.energies.shape[0]
        if n < 2:
            raise ValueError("a model needs at least two levels")
        if np.any(np.diff(self.energies) <= 0):
            raise ValueError("energies must be strictly ascending")
        if self.degeneracies.shape != (n,) or np.any(self.degeneracies <= 0):
            raise ValueError("bad degeneracies")
        if self.oscillator_strengths.shape != (n, n):
            raise ValueError("oscillator strength matrix must be (n, n)")
        if np.any(self.oscillator_strengths < 0):
            raise ValueError("oscillator strengths must be non-negative")

    @property
    def n_levels(self) -> int:
        return self.energies.shape[0]

    @property
    def n_transitions(self) -> int:
        return int(np.count_nonzero(self.oscillator_strengths))

    @property
    def matrix_bytes(self) -> int:
        """Dense rate-matrix footprint — the per-zone working set."""
        return 8 * self.n_levels * self.n_levels

    def zone_working_set_bytes(self) -> int:
        """Memory one zone's solve needs: rate matrix + a few vectors +
        LU workspace (~2x the matrix)."""
        return 3 * self.matrix_bytes + 8 * 8 * self.n_levels


def make_model(size: str = "small", seed: int = 0,
               transition_fill: float = 0.3) -> AtomicModel:
    """Generate a synthetic model of the given size class."""
    if size not in MODEL_SIZES:
        raise ValueError(f"size must be one of {sorted(MODEL_SIZES)}")
    if not (0 < transition_fill <= 1.0):
        raise ValueError("transition_fill in (0, 1]")
    n = MODEL_SIZES[size]
    rng = make_rng(seed)
    # hydrogenic ladder 1 - 1/k^2 with random sub-splitting
    shell = np.sqrt(np.arange(1, n + 1))
    base = 1.0 - 1.0 / (1.0 + shell) ** 2
    jitter = rng.random(n) * 0.3 / n
    energies = np.sort(base + np.cumsum(jitter))
    energies -= energies[0]
    # enforce strict ascent
    energies += np.arange(n) * 1e-9
    degeneracies = 2.0 * np.ceil(shell) ** 2
    # oscillator strengths: sparse upper triangle, decaying with gap
    f = np.zeros((n, n))
    iu, ju = np.triu_indices(n, k=1)
    gap = energies[ju] - energies[iu]
    keep = rng.random(iu.size) < transition_fill
    strength = np.exp(-3.0 * gap[keep]) * rng.random(keep.sum())
    f[iu[keep], ju[keep]] = strength
    # guarantee a connected chain so the rate matrix is irreducible
    for k in range(n - 1):
        if f[k, k + 1] == 0:
            f[k, k + 1] = 0.05 * np.exp(-3.0 * (energies[k + 1] - energies[k]))
    return AtomicModel(
        name=size,
        energies=energies,
        degeneracies=degeneracies,
        oscillator_strengths=f,
    )
