"""Rate-matrix assembly, population solves, and opacities.

The rate matrix R collects all transition rates; populations evolve as
``dn/dt = R n`` with columns summing to zero (conservation).  The
steady state solves ``R n = 0`` with the normalization ``sum(n) = 1``
replacing one (redundant) row — the standard non-LTE kinetics
formulation.  The result feeds :func:`opacity_spectrum`, the
frequency-dependent opacity Cretin hands to radiation transport.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kinetics.atomicmodel import AtomicModel
from repro.kinetics.rates import (
    collisional_deexcitation,
    collisional_excitation,
    radiative_decay,
)


def assemble_rate_matrix(
    model: AtomicModel,
    t_e: float,
    n_e: float,
    include_radiative: bool = True,
) -> np.ndarray:
    """Full rate matrix with conservation diagonal.

    Off-diagonal R[i, j] >= 0 is the j -> i rate; the diagonal is
    minus the column sums, so ``ones @ R == 0`` exactly.
    """
    r = collisional_excitation(model, t_e, n_e)
    r = r + collisional_deexcitation(model, t_e, n_e)
    if include_radiative:
        r = r + radiative_decay(model)
    np.fill_diagonal(r, 0.0)
    np.fill_diagonal(r, -r.sum(axis=0))
    return r


def steady_state_populations(
    rate_matrix: np.ndarray,
    solver: str = "direct",
    tol: float = 1e-12,
) -> np.ndarray:
    """Solve R n = 0, sum(n) = 1.

    ``solver="direct"`` uses dense LU (the cuSOLVER path);
    ``solver="iterative"`` uses our GMRES with Jacobi preconditioning
    (the custom cuSPARSE path, §4.3).
    """
    n = rate_matrix.shape[0]
    if rate_matrix.shape != (n, n):
        raise ValueError("rate matrix must be square")
    a = rate_matrix.copy()
    a[-1, :] = 1.0  # replace the redundant equation with normalization
    b = np.zeros(n)
    b[-1] = 1.0
    if solver == "direct":
        pops = np.linalg.solve(a, b)
    elif solver == "iterative":
        from repro.solvers.krylov import gmres

        diag = np.diag(a).copy()
        diag[diag == 0] = 1.0
        x, info = gmres(
            lambda v: a @ v, b, preconditioner=lambda r: r / diag,
            tol=tol, restart=min(n, 80), max_iter=40 * n,
        )
        if not info.converged:
            raise RuntimeError(
                f"iterative population solve failed: reduction {info.reduction:.2e}"
            )
        pops = x
    else:
        raise ValueError("solver must be 'direct' or 'iterative'")
    # clean tiny negatives from roundoff and renormalize
    pops = np.maximum(pops, 0.0)
    total = pops.sum()
    if total <= 0:
        raise RuntimeError("population solve produced a zero vector")
    return pops / total


def boltzmann_populations(model: AtomicModel, t_e: float) -> np.ndarray:
    """LTE (Boltzmann) populations — the collisional-limit reference."""
    if t_e <= 0:
        raise ValueError("temperature must be positive")
    w = model.degeneracies * np.exp(-model.energies / t_e)
    return w / w.sum()


def evolve_populations(
    rate_matrix: np.ndarray,
    n0: np.ndarray,
    dt: float,
    n_steps: int,
) -> np.ndarray:
    """Time-dependent kinetics with implicit Euler steps (stiff-safe)."""
    if dt <= 0 or n_steps < 0:
        raise ValueError("bad time-stepping parameters")
    n = n0.copy()
    eye = np.eye(rate_matrix.shape[0])
    lhs = eye - dt * rate_matrix
    lu_inv = np.linalg.inv(lhs)
    for _ in range(n_steps):
        n = lu_inv @ n
    return n


def opacity_spectrum(
    model: AtomicModel,
    populations: np.ndarray,
    freqs: np.ndarray,
    line_width: float = 0.005,
) -> np.ndarray:
    """Bound-bound opacity: population-weighted Gaussian line profiles.

    kappa(nu) = sum over transitions (i<j) of
    n_i * f_ij * exp(-((nu - dE_ij)/w)^2).
    """
    if populations.shape[0] != model.n_levels:
        raise ValueError("population vector length mismatch")
    if line_width <= 0:
        raise ValueError("line width must be positive")
    iu, ju = np.triu_indices(model.n_levels, k=1)
    f = model.oscillator_strengths[iu, ju]
    mask = f > 0
    centers = (model.energies[ju] - model.energies[iu])[mask]
    weights = (populations[iu] * f)[mask]
    freqs = np.asarray(freqs, dtype=np.float64)
    prof = np.exp(
        -(((freqs[:, None] - centers[None, :]) / line_width) ** 2)
    )
    return prof @ weights
