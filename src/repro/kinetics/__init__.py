"""Cretin / minikin proxy: non-LTE atomic kinetics (§4.3).

Cretin "solves a system of rate equations to compute populations of
various atomic configurations ... The main computation calculates
transition rates between pairs of states, forms a rate matrix from
them, and inverts that matrix to update the populations", then derives
frequency-dependent opacities.  minikin is the mini-app with "versions
of each of the rate calculations".

- :mod:`repro.kinetics.atomicmodel` — screened-hydrogenic-flavored
  synthetic atomic models at the paper's four size classes
  (S/M/L/XL), with energies, degeneracies and oscillator strengths.
- :mod:`repro.kinetics.rates` — the transition-rate kernels
  (collisional excitation/deexcitation via detailed balance, radiative
  decay), each a differently-shaped parallelization problem, exactly
  as the paper notes ("each type posed a different parallelization
  issue").
- :mod:`repro.kinetics.ratematrix` — rate-matrix assembly, steady-
  state population solves, Boltzmann-limit validation, and opacity
  spectra.
- :mod:`repro.kinetics.minikin` — the mini-app: batched multi-zone
  population solves with the two threading strategies (CPU
  thread-per-zone with private-memory pressure vs GPU
  thread-per-transition needing one zone resident), direct (cuSOLVER
  proxy) and iterative (custom cuSPARSE-GMRES proxy) solvers, and the
  node-throughput model that reproduces the 5.75X headline.
"""

from repro.kinetics.atomicmodel import MODEL_SIZES, AtomicModel, make_model
from repro.kinetics.rates import (
    collisional_excitation,
    collisional_deexcitation,
    radiative_decay,
)
from repro.kinetics.ratematrix import (
    assemble_rate_matrix,
    boltzmann_populations,
    opacity_spectrum,
    steady_state_populations,
)
from repro.kinetics.minikin import (
    Minikin,
    Zone,
    node_throughput,
    sweep_conditions,
)

__all__ = [
    "AtomicModel",
    "MODEL_SIZES",
    "make_model",
    "collisional_excitation",
    "collisional_deexcitation",
    "radiative_decay",
    "assemble_rate_matrix",
    "steady_state_populations",
    "boltzmann_populations",
    "opacity_spectrum",
    "Minikin",
    "Zone",
    "node_throughput",
    "sweep_conditions",
]
