"""Hayward-fault earthquake scenario: the computation behind Fig 7.

SW4's flagship early-science run simulated a magnitude-7.0 rupture on
the Hayward fault, resolving frequencies up to 5 Hz over a regional
domain, and produced shake maps of peak ground velocity (Fig 7).  Our
laptop-scale proxy keeps the scenario's structure:

- a depth-layered wave-speed model with a slow sedimentary basin (the
  feature that concentrates shaking in the real runs),
- an extended dipping fault plane discretized as a line of time-delayed
  Ricker sources (rupture propagation),
- surface peak-ground-velocity extraction into a shake map.

:class:`HaywardScenario` wires these into an :class:`~repro.stencil.
sw4lite.Sw4Lite` solver; the bench harness pairs the measured kernel
trace with the machine models to reproduce the paper's Sierra-vs-Cori
throughput comparison (256 GPU nodes ~ Cori-II time; 14X per-node
throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.stencil.grid import CartesianGrid3D
from repro.stencil.sw4lite import RickerSource, Sw4Lite, Sw4Options


def layered_speed_model(
    grid: CartesianGrid3D,
    surface_speed: float = 1.0,
    depth_gradient: float = 2.0,
    basin_center: Optional[Tuple[float, float]] = None,
    basin_radius: float = 0.0,
    basin_slowdown: float = 0.5,
) -> np.ndarray:
    """Wave speed increasing with depth, with an optional slow basin.

    z = 0 is the free surface (top of the grid).  ``basin_slowdown``
    multiplies the speed inside a cylindrical basin of
    ``basin_radius`` around ``basin_center`` in the upper quarter of
    the domain — the slow near-surface material that amplifies shaking.
    """
    if surface_speed <= 0:
        raise ValueError("surface speed must be positive")
    if not (0 < basin_slowdown <= 1.0):
        raise ValueError("basin_slowdown must be in (0, 1]")
    xs, ys, zs = grid.coords()
    depth = zs / max(zs[-1], grid.h)
    speed = surface_speed * (1.0 + depth_gradient * depth)
    c = np.broadcast_to(speed[None, None, :],
                        (grid.nx, grid.ny, grid.nz)).copy()
    if basin_center is not None and basin_radius > 0:
        bx, by = basin_center
        r2 = (xs[:, None] - bx) ** 2 + (ys[None, :] - by) ** 2
        mask2d = r2 <= basin_radius**2
        depth_mask = zs < 0.25 * zs[-1] + grid.h
        c[mask2d[:, :, None] & depth_mask[None, None, :]] *= basin_slowdown
    return c


@dataclass
class HaywardScenario:
    """Regional earthquake proxy with PGV shake-map output.

    Parameters are in grid units; defaults give a quick, stable run.
    """

    grid: CartesianGrid3D
    rupture_speed: float = 0.7      # fraction of surface wave speed
    fault_depth_frac: float = 0.5   # fault top depth as domain fraction
    n_subfaults: int = 8
    source_freq: float = 0.08       # in 1/time units of the grid
    magnitude: float = 1.0
    basin: bool = True
    backend: str = "cuda"
    ctx: Optional[ExecutionContext] = None

    def __post_init__(self) -> None:
        if self.n_subfaults < 1:
            raise ValueError("need at least one subfault")
        if not (0 < self.rupture_speed <= 1.0):
            raise ValueError("rupture_speed must be in (0, 1]")
        g = self.grid
        basin_center = (0.65 * g.nx * g.h, 0.5 * g.ny * g.h)
        self.speed = layered_speed_model(
            g,
            surface_speed=1.0,
            basin_center=basin_center if self.basin else None,
            basin_radius=0.25 * g.nx * g.h if self.basin else 0.0,
        )
        self.sources = self._build_fault_sources()
        # supergrid absorbing layers, as in the real SW4 regional runs:
        # outgoing waves leave the domain instead of reflecting
        self.solver = Sw4Lite(
            g, self.speed, sources=self.sources,
            options=Sw4Options(backend=self.backend, boundary="supergrid"),
            ctx=self.ctx,
        )
        self._pgv: Optional[np.ndarray] = None

    def _build_fault_sources(self) -> List[RickerSource]:
        """A line of time-delayed subfault sources: rupture propagation
        along strike (the y direction) at ``rupture_speed``."""
        g = self.grid
        fault_x = 0.35 * g.nx * g.h
        fault_z = self.fault_depth_frac * g.nz * g.h
        ys = np.linspace(0.25 * g.ny, 0.75 * g.ny, self.n_subfaults) * g.h
        rupture_v = self.rupture_speed * 1.0  # surface speed is 1.0
        sources = []
        for y in ys:
            delay = (y - ys[0]) / rupture_v
            sources.append(
                RickerSource(
                    x=fault_x, y=float(y), z=fault_z,
                    freq=self.source_freq,
                    amplitude=self.magnitude / self.n_subfaults,
                    t0=1.0 / self.source_freq + delay,
                )
            )
        return sources

    # ------------------------------------------------------------------

    def run(self, n_steps: int) -> np.ndarray:
        """Advance the simulation, tracking surface PGV; returns the
        shake map (nx, ny)."""
        pgv = np.zeros((self.grid.nx, self.grid.ny))
        for _ in range(n_steps):
            self.solver.step()
            v_surface = np.abs(self.solver.velocity()[:, :, 0])
            np.maximum(pgv, v_surface, out=pgv)
        self._pgv = pgv
        return pgv

    @property
    def shake_map(self) -> np.ndarray:
        if self._pgv is None:
            raise RuntimeError("run() the scenario first")
        return self._pgv

    def shaking_stats(self) -> "dict[str, float]":
        """Summary statistics used by tests and the example script."""
        pgv = self.shake_map
        return {
            "pgv_max": float(pgv.max()),
            "pgv_mean": float(pgv.mean()),
            "area_strong": float((pgv > 0.5 * pgv.max()).mean()),
        }
