"""SW4 / sw4lite proxy: high-order seismic wave propagation (§4.9).

The Seismic activity ported SW4 (4th-order summation-by-parts finite
differences for elastic waves) by first building the sw4lite proxy.
This package is our sw4lite:

- :mod:`repro.stencil.grid` — Cartesian grids and field storage.
- :mod:`repro.stencil.kernels` — 4th-order finite-difference stencils
  with both *unfused* (one kernel per derivative term, the naive port)
  and *fused* (single kernel) execution paths that are numerically
  identical but differ in launch count and memory traffic — the
  optimization §4.9 credits with ~2X.
- :mod:`repro.stencil.sw4lite` — the time-domain solver: variable-
  coefficient acoustic wave equation (the scalar proxy for SW4's
  elastic system; see DESIGN.md substitutions), leapfrog in time,
  Ricker point sources, energy accounting, backend selection,
  supergrid absorbing boundary layers (SW4's boundary treatment), and
  roofline kernel tracing.
- :mod:`repro.stencil.hayward` — the Hayward-fault earthquake
  scenario: a layered basin velocity model, an extended fault source,
  and peak-ground-velocity shake-map extraction (the data behind
  Fig 7).
"""

from repro.stencil.grid import CartesianGrid3D
from repro.stencil.kernels import (
    FD4_COEFFS,
    apply_wave_rhs_fused,
    apply_wave_rhs_unfused,
    laplacian_4th,
)
from repro.stencil.sw4lite import Sw4Lite, Sw4Options, RickerSource
from repro.stencil.hayward import HaywardScenario, layered_speed_model

__all__ = [
    "CartesianGrid3D",
    "FD4_COEFFS",
    "laplacian_4th",
    "apply_wave_rhs_fused",
    "apply_wave_rhs_unfused",
    "Sw4Lite",
    "Sw4Options",
    "RickerSource",
    "HaywardScenario",
    "layered_speed_model",
]
