"""Cartesian grids for the finite-difference wave solvers.

Fields carry a two-cell ghost frame (the 4th-order stencil half-width);
the interior is ``[2, n+2)`` in each direction.  Grids are deliberately
simple — SW4's curvilinear mesh refinement is out of scope (see
DESIGN.md) — but sizes are arbitrary per direction and spacing is
uniform, matching the sw4lite test configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: ghost-frame width required by the 4th-order stencil
GHOST = 2


@dataclass(frozen=True)
class CartesianGrid3D:
    """Uniform 3D grid of ``nx x ny x nz`` interior points, spacing h."""

    nx: int
    ny: int
    nz: int
    h: float = 1.0

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("grid extents must be >= 1")
        if self.h <= 0:
            raise ValueError("grid spacing must be positive")

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Field storage shape (interior + ghosts)."""
        return (self.nx + 2 * GHOST, self.ny + 2 * GHOST, self.nz + 2 * GHOST)

    @property
    def n_points(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def interior(self) -> Tuple[slice, slice, slice]:
        return (
            slice(GHOST, GHOST + self.nx),
            slice(GHOST, GHOST + self.ny),
            slice(GHOST, GHOST + self.nz),
        )

    def new_field(self, fill: float = 0.0) -> np.ndarray:
        return np.full(self.shape, fill, dtype=np.float64)

    def coords(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interior physical coordinates (1D arrays per axis)."""
        return (
            np.arange(self.nx) * self.h,
            np.arange(self.ny) * self.h,
            np.arange(self.nz) * self.h,
        )

    def fill_periodic_ghosts(self, f: np.ndarray) -> None:
        """Copy periodic images into the ghost frame (in place)."""
        g = GHOST
        f[:g] = f[-2 * g:-g]
        f[-g:] = f[g:2 * g]
        f[:, :g] = f[:, -2 * g:-g]
        f[:, -g:] = f[:, g:2 * g]
        f[:, :, :g] = f[:, :, -2 * g:-g]
        f[:, :, -g:] = f[:, :, g:2 * g]

    def zero_ghosts(self, f: np.ndarray) -> None:
        """Homogeneous Dirichlet ghost frame (in place)."""
        g = GHOST
        f[:g] = 0.0
        f[-g:] = 0.0
        f[:, :g] = 0.0
        f[:, -g:] = 0.0
        f[:, :, :g] = 0.0
        f[:, :, -g:] = 0.0

    def nearest_index(self, x: float, y: float, z: float
                      ) -> Tuple[int, int, int]:
        """Interior index of the grid point closest to (x, y, z)."""
        def clamp(v: float, n: int) -> int:
            return int(np.clip(round(v / self.h), 0, n - 1))

        return clamp(x, self.nx), clamp(y, self.ny), clamp(z, self.nz)
