"""4th-order finite-difference kernels with fused/unfused variants.

The sw4lite optimization story (§4.9) has three measurable parts:

1. shared-memory stencil kernels (~2X on the stencil itself, reaching
   ~40% of peak),
2. merging small kernels into larger ones (fewer launches, less
   intermediate traffic),
3. offloading everything in the time-stepping loop (forcing, boundary)
   so data never returns to the host mid-step.

This module provides the stencil itself (classic 4th-order central
coefficients) in two execution shapes that produce bitwise-identical
results: :func:`apply_wave_rhs_unfused` launches one kernel per
direction plus a combine kernel (the naive port), while
:func:`apply_wave_rhs_fused` is a single launch.  Both record their
kernels/traffic in the bound execution context so the roofline model
prices the difference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec
from repro.stencil.grid import GHOST, CartesianGrid3D

#: classic 4th-order second-derivative coefficients
#: f'' ~= (-f[i-2] + 16 f[i-1] - 30 f[i] + 16 f[i+1] - f[i+2]) / (12 h^2)
FD4_COEFFS = np.array([-1.0, 16.0, -30.0, 16.0, -1.0]) / 12.0


def _d2_axis(f: np.ndarray, axis: int, h: float) -> np.ndarray:
    """4th-order second derivative along *axis*, interior-shaped output.

    *f* includes the 2-cell ghost frame; output covers interior points
    only.
    """
    g = GHOST
    sl = [slice(g, -g)] * 3

    def shifted(offset: int) -> np.ndarray:
        s = list(sl)
        s[axis] = slice(g + offset, f.shape[axis] - g + offset)
        return f[tuple(s)]

    c = FD4_COEFFS
    out = c[0] * shifted(-2)
    out += c[1] * shifted(-1)
    out += c[2] * shifted(0)
    out += c[3] * shifted(1)
    out += c[4] * shifted(2)
    out /= h * h
    return out


def laplacian_4th(grid: CartesianGrid3D, f: np.ndarray) -> np.ndarray:
    """4th-order Laplacian of *f* on interior points (no trace)."""
    if f.shape != grid.shape:
        raise ValueError("field shape does not match grid")
    return (
        _d2_axis(f, 0, grid.h) + _d2_axis(f, 1, grid.h) + _d2_axis(f, 2, grid.h)
    )


def _stencil_spec(
    name: str,
    n: int,
    flops_per_point: float,
    bytes_per_point: float,
    tuned: bool,
    uses_shared_memory: bool,
) -> KernelSpec:
    eff = 1.0 if tuned else 0.77  # RAJA-style dispatch penalty (§4.9)
    return KernelSpec(
        name=name,
        flops=flops_per_point * n,
        bytes_read=bytes_per_point * n * 0.75,
        bytes_written=bytes_per_point * n * 0.25,
        compute_efficiency=0.30 * eff,
        bandwidth_efficiency=0.75 * eff,
        uses_shared_memory=uses_shared_memory,
    )


def apply_wave_rhs_unfused(
    grid: CartesianGrid3D,
    u: np.ndarray,
    c2: np.ndarray,
    ctx: Optional[ExecutionContext] = None,
    tuned: bool = False,
) -> np.ndarray:
    """rhs = c^2 * Laplacian(u), one kernel per direction (naive port).

    ``c2`` is the squared wave speed on interior points.  Launches four
    kernels (three directional derivatives + combine) and streams the
    intermediate fields through memory — the launch-bound structure the
    sw4lite team started from.
    """
    if c2.shape != (grid.nx, grid.ny, grid.nz):
        raise ValueError("c2 must be interior-shaped")
    n = grid.n_points
    dxx = _d2_axis(u, 0, grid.h)
    dyy = _d2_axis(u, 1, grid.h)
    dzz = _d2_axis(u, 2, grid.h)
    rhs = c2 * (dxx + dyy + dzz)
    if ctx is not None:
        for axis in "xyz":
            ctx.trace.record_kernel(
                _stencil_spec(
                    # 5-point line stencil: neighbors mostly cached,
                    # ~1 streamed read + 1 write per point
                    f"d2{axis}{axis}", n, flops_per_point=9,
                    bytes_per_point=8 * 2,
                    tuned=tuned, uses_shared_memory=False,
                )
            )
        ctx.trace.record_kernel(
            _stencil_spec(
                "combine", n, flops_per_point=3, bytes_per_point=8 * 4,
                tuned=tuned, uses_shared_memory=False,
            )
        )
    return rhs


def apply_wave_rhs_fused(
    grid: CartesianGrid3D,
    u: np.ndarray,
    c2: np.ndarray,
    ctx: Optional[ExecutionContext] = None,
    tuned: bool = True,
) -> np.ndarray:
    """rhs = c^2 * Laplacian(u) in a single fused kernel.

    Numerically identical to the unfused version; one launch, no
    intermediate fields, and (when ``tuned``) the shared-memory
    treatment that took sw4lite's stencils to ~40% of peak.
    """
    if c2.shape != (grid.nx, grid.ny, grid.nz):
        raise ValueError("c2 must be interior-shaped")
    rhs = c2 * laplacian_4th(grid, u)
    if ctx is not None:
        n = grid.n_points
        ctx.trace.record_kernel(
            _stencil_spec(
                "wave-rhs-fused", n, flops_per_point=30,
                # 13-point stencil; shared-memory plane reuse leaves
                # ~3.5 streamed values per point (u, c2, write + halo)
                bytes_per_point=8 * 3.5,
                tuned=tuned, uses_shared_memory=tuned,
            )
        )
    return rhs


def discrete_energy(
    grid: CartesianGrid3D,
    u_prev: np.ndarray,
    u_curr: np.ndarray,
    c2: np.ndarray,
    dt: float,
) -> float:
    """Leapfrog-compatible discrete wave energy.

    E = 1/2 ||(u^{n+1}-u^n)/dt||^2 - 1/2 <u^{n+1}, c^2 L u^n>
    (the standard conserved quantity of the leapfrog scheme on a
    periodic domain).
    """
    it = grid.interior
    v = (u_curr[it] - u_prev[it]) / dt
    kinetic = 0.5 * float(np.sum(v * v))
    lap = laplacian_4th(grid, u_prev)
    potential = -0.5 * float(np.sum(u_curr[it] * (c2 * lap)))
    return (kinetic + potential) * grid.h**3
