"""sw4lite proxy: time-domain wave propagation with tracing backends.

Solves the variable-coefficient acoustic wave equation

    u_tt = c(x)^2 Laplacian(u) + F(x, t)

with 4th-order spatial stencils and 2nd-order leapfrog in time — the
scalar proxy for SW4's elastic system (DESIGN.md records the
substitution; the stencil shape, launch structure, memory traffic and
time-stepping pattern are the parts the paper's optimizations act on).

Backend modes reproduce §4.9's comparison:

- ``"cuda"`` — fused kernels, tuned (shared memory): the hand-CUDA path.
- ``"raja"`` — fused kernels, untuned (~30% dispatch penalty): the
  portable path the production SW4 adopted.
- ``"naive"`` — unfused kernels, untuned: the starting point.
- every mode also offloads forcing and the time update when
  ``offload_all=True`` (the "offload everything in the main
  time-stepping routine" optimization); otherwise those phases run
  "on the host" and incur per-step transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec, TransferSpec
from repro.stencil.grid import GHOST, CartesianGrid3D
from repro.stencil.kernels import (
    apply_wave_rhs_fused,
    apply_wave_rhs_unfused,
    discrete_energy,
)

BACKENDS = ("cuda", "raja", "naive")


@dataclass(frozen=True)
class RickerSource:
    """Ricker-wavelet point source."""

    x: float
    y: float
    z: float
    freq: float
    amplitude: float = 1.0
    t0: Optional[float] = None

    def __post_init__(self) -> None:
        if self.freq <= 0:
            raise ValueError("source frequency must be positive")

    def time_function(self, t: float) -> float:
        t0 = self.t0 if self.t0 is not None else 1.0 / self.freq
        arg = (np.pi * self.freq * (t - t0)) ** 2
        return float(self.amplitude * (1.0 - 2.0 * arg) * np.exp(-arg))


@dataclass
class Sw4Options:
    backend: str = "cuda"
    #: CFL number relative to max wave speed
    cfl: float = 0.4
    #: "dirichlet" (reflecting), "periodic", or "supergrid" — SW4's
    #: absorbing treatment: a sponge of thickness ``supergrid_width``
    #: cells damps outgoing waves near the lateral/bottom boundaries
    #: (the top stays a free-ish surface for seismology)
    boundary: str = "dirichlet"
    supergrid_width: int = 6
    supergrid_strength: float = 0.05
    offload_all: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if not (0 < self.cfl <= 0.7):
            raise ValueError("cfl must be in (0, 0.7] for stability")
        if self.boundary not in ("dirichlet", "periodic", "supergrid"):
            raise ValueError(
                "boundary must be 'dirichlet', 'periodic', or 'supergrid'"
            )
        if self.supergrid_width < 1:
            raise ValueError("supergrid_width must be >= 1")
        if not (0 < self.supergrid_strength <= 1.0):
            raise ValueError("supergrid_strength in (0, 1]")


class Sw4Lite:
    """Leapfrog wave solver on a Cartesian grid.

    Parameters
    ----------
    grid:
        The computational grid.
    speed:
        Wave speed on interior points, shape (nx, ny, nz) (or scalar).
    sources:
        Ricker point sources.
    options:
        Backend / stability configuration.
    ctx:
        Execution context for kernel/transfer tracing.
    """

    def __init__(
        self,
        grid: CartesianGrid3D,
        speed,
        sources: Optional[List[RickerSource]] = None,
        options: Optional[Sw4Options] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        self.grid = grid
        self.opts = options if options is not None else Sw4Options()
        self.ctx = ctx
        speed = np.asarray(speed, dtype=np.float64)
        if speed.ndim == 0:
            speed = np.full((grid.nx, grid.ny, grid.nz), float(speed))
        if speed.shape != (grid.nx, grid.ny, grid.nz):
            raise ValueError("speed must be interior-shaped or scalar")
        if np.any(speed <= 0):
            raise ValueError("wave speeds must be positive")
        self.c2 = speed * speed
        self.c_max = float(speed.max())
        self.dt = self.opts.cfl * grid.h / self.c_max
        self.sources = list(sources or [])
        self._src_idx = [
            grid.nearest_index(s.x, s.y, s.z) for s in self.sources
        ]
        self.u_prev = grid.new_field()
        self.u_curr = grid.new_field()
        self.t = 0.0
        self.steps_taken = 0
        self._sponge = (
            self._build_sponge() if self.opts.boundary == "supergrid"
            else None
        )

    def _build_sponge(self) -> np.ndarray:
        """Interior-shaped damping factor: 1 in the interior, ramping
        down smoothly inside the supergrid layers (lateral sides and
        the bottom; the z=0 surface stays free for seismology)."""
        g = self.grid
        w = min(self.opts.supergrid_width,
                max(1, min(g.nx, g.ny, g.nz) // 2))
        strength = self.opts.supergrid_strength

        def ramp(n: int, both_sides: bool) -> np.ndarray:
            sigma = np.zeros(n)
            edge = np.arange(w, dtype=np.float64)
            profile = (1.0 - edge / w) ** 3  # smooth cubic taper
            m = min(w, n)
            sigma[-m:] = np.maximum(sigma[-m:], profile[:m][::-1])
            if both_sides:
                sigma[:m] = np.maximum(sigma[:m], profile[:m])
            return sigma

        sx = ramp(g.nx, both_sides=True)
        sy = ramp(g.ny, both_sides=True)
        sz = ramp(g.nz, both_sides=False)  # damp the bottom only
        sigma = np.maximum.reduce(np.meshgrid(sx, sy, sz, indexing="ij"))
        return 1.0 - strength * sigma

    # ------------------------------------------------------------------

    def set_initial(self, u0: np.ndarray, v0: Optional[np.ndarray] = None
                    ) -> None:
        """Initial displacement (interior-shaped) and optional velocity."""
        if u0.shape != (self.grid.nx, self.grid.ny, self.grid.nz):
            raise ValueError("u0 must be interior-shaped")
        it = self.grid.interior
        self.u_curr.fill(0.0)
        self.u_curr[it] = u0
        self._apply_bc(self.u_curr)
        # u_prev from a Taylor step backwards: u(-dt) ~= u0 - dt v0 + dt^2/2 utt
        self.u_prev.fill(0.0)
        rhs = self.c2 * self._laplacian(self.u_curr)
        self.u_prev[it] = u0 + 0.5 * self.dt**2 * rhs
        if v0 is not None:
            self.u_prev[it] -= self.dt * v0
        self._apply_bc(self.u_prev)

    def _laplacian(self, f: np.ndarray) -> np.ndarray:
        from repro.stencil.kernels import laplacian_4th

        return laplacian_4th(self.grid, f)

    def _apply_bc(self, f: np.ndarray) -> None:
        if self.opts.boundary == "periodic":
            self.grid.fill_periodic_ghosts(f)
        else:
            self.grid.zero_ghosts(f)

    def _rhs(self, u: np.ndarray) -> np.ndarray:
        if self.opts.backend == "naive":
            return apply_wave_rhs_unfused(self.grid, u, self.c2, self.ctx,
                                          tuned=False)
        tuned = self.opts.backend == "cuda"
        return apply_wave_rhs_fused(self.grid, u, self.c2, self.ctx,
                                    tuned=tuned)

    def _record_update_kernels(self) -> None:
        """Trace the time-update + forcing kernels (and host transfers
        when they are NOT offloaded)."""
        if self.ctx is None:
            return
        n = self.grid.n_points
        tuned = self.opts.backend == "cuda"
        eff = 1.0 if tuned else 0.77
        self.ctx.trace.record_kernel(KernelSpec(
            name="time-update", flops=4.0 * n, bytes_read=8.0 * 3 * n,
            bytes_written=8.0 * n, compute_efficiency=0.5 * eff,
            bandwidth_efficiency=0.8 * eff,
        ))
        if self.opts.offload_all:
            self.ctx.trace.record_kernel(KernelSpec(
                name="forcing", flops=12.0 * max(len(self.sources), 1),
                bytes_read=8.0 * max(len(self.sources), 1),
                bytes_written=8.0 * max(len(self.sources), 1),
            ))
        else:
            # forcing computed on the host: the whole displacement field
            # crosses the link twice per step
            nbytes = 8.0 * n
            self.ctx.trace.record_transfer(
                TransferSpec("forcing-d2h", nbytes=nbytes, direction="d2h")
            )
            self.ctx.trace.record_transfer(
                TransferSpec("forcing-h2d", nbytes=nbytes, direction="h2d")
            )

    def step(self) -> None:
        """Advance one leapfrog step."""
        it = self.grid.interior
        rhs = self._rhs(self.u_curr)
        for src, (i, j, k) in zip(self.sources, self._src_idx):
            rhs[i, j, k] += src.time_function(self.t) / self.grid.h**3
        u_next = self.u_prev  # reuse storage (classic leapfrog rotation)
        u_next[it] = (
            2.0 * self.u_curr[it] - self.u_prev[it] + self.dt**2 * rhs
        )
        if self._sponge is not None:
            # damp field and (implicitly) velocity inside the layers
            u_next[it] *= self._sponge
            self.u_curr[it] *= self._sponge
        self._apply_bc(u_next)
        self.u_prev, self.u_curr = self.u_curr, u_next
        self.t += self.dt
        self.steps_taken += 1
        self._record_update_kernels()

    def run(self, n_steps: int) -> None:
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        for _ in range(n_steps):
            self.step()

    # ------------------------------------------------------------------

    def solution(self) -> np.ndarray:
        """Current interior displacement (copy)."""
        return self.u_curr[self.grid.interior].copy()

    def velocity(self) -> np.ndarray:
        """Current interior velocity estimate (backward difference)."""
        it = self.grid.interior
        return (self.u_curr[it] - self.u_prev[it]) / self.dt

    def energy(self) -> float:
        return discrete_energy(self.grid, self.u_prev, self.u_curr, self.c2,
                               self.dt)
