"""Patches: boxes plus ghosted field storage.

A :class:`Patch` owns named cell-centered fields over its
:class:`~repro.solvers.structured.Box`, each carrying a ghost frame.
Storage can come from a mini-Umpire :class:`~repro.core.memory.
QuickPool` — the allocation-amortization practice §4.10.5 credits
("all data is allocated from memory pools that Umpire provides").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.memory import ManagedArray, QuickPool
from repro.solvers.structured import Box


class Patch:
    """A 2D patch: box + ghosted fields.

    Field arrays have shape ``box.shape + 2*ghost`` per axis; index
    ``[ghost, ghost]`` corresponds to global cell ``box.lo``.
    """

    def __init__(self, box: Box, ghost: int = 2,
                 pool: Optional[QuickPool] = None):
        if box.ndim != 2:
            raise ValueError("Patch supports 2D boxes")
        if ghost < 0:
            raise ValueError("ghost width must be non-negative")
        self.box = box
        self.ghost = ghost
        self.pool = pool
        self._fields: Dict[str, np.ndarray] = {}
        self._managed: Dict[str, ManagedArray] = {}

    @property
    def storage_shape(self) -> Tuple[int, int]:
        nx, ny = self.box.shape
        return (nx + 2 * self.ghost, ny + 2 * self.ghost)

    def allocate(self, name: str, fill: float = 0.0) -> np.ndarray:
        if name in self._fields:
            raise KeyError(f"field {name!r} already allocated")
        if self.pool is not None:
            managed = self.pool.allocate(self.storage_shape, name=name)
            managed.data.fill(fill)
            self._managed[name] = managed
            self._fields[name] = managed.data
        else:
            self._fields[name] = np.full(self.storage_shape, fill)
        return self._fields[name]

    def field(self, name: str) -> np.ndarray:
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(
                f"no field {name!r}; allocated: {sorted(self._fields)}"
            )

    @property
    def field_names(self):
        return sorted(self._fields)

    def release(self) -> None:
        """Return pooled storage to the pool."""
        if self.pool is not None:
            for managed in self._managed.values():
                self.pool.release(managed)
        self._fields.clear()
        self._managed.clear()

    # -- index helpers ---------------------------------------------------

    def interior(self, name: str) -> np.ndarray:
        g = self.ghost
        f = self.field(name)
        return f[g:f.shape[0] - g, g:f.shape[1] - g]

    def global_slices(self, region: Box) -> Tuple[slice, slice]:
        """Array slices (including ghosts) covering the global *region*.

        The region may extend into this patch's ghost frame.
        """
        storage_box = self.box.grow(self.ghost)
        if not storage_box.contains(region):
            raise ValueError(f"region {region} outside patch storage")
        ox, oy = storage_box.lo
        return (
            slice(region.lo[0] - ox, region.hi[0] - ox),
            slice(region.lo[1] - oy, region.hi[1] - oy),
        )

    def view(self, name: str, region: Box) -> np.ndarray:
        """Writable view of *region* (global coordinates)."""
        return self.field(name)[self.global_slices(region)]
