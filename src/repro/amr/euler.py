"""2D compressible Euler: HLL finite-volume kernels and exact Riemann.

The CleverLeaf computational core.  State is conserved variables
``(rho, rho*u, rho*v, E)`` on a cell-centered grid with two ghost
layers.  The update is dimensionally split (Strang-like x-y sweep per
step) with HLL interface fluxes and Davis wave-speed estimates — a
robust, positivity-friendly classic.

:func:`exact_riemann` implements the ideal-gas exact Riemann solution
(Toro's iterative pressure solve) used to validate the numerical
scheme on the Sod shock tube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

GAMMA = 1.4
GHOST = 2


@dataclass
class EulerState2D:
    """Conserved state on an (nx+4, ny+4) ghosted grid."""

    rho: np.ndarray
    mx: np.ndarray
    my: np.ndarray
    e: np.ndarray

    @staticmethod
    def zeros(nx: int, ny: int) -> "EulerState2D":
        shape = (nx + 2 * GHOST, ny + 2 * GHOST)
        return EulerState2D(*(np.zeros(shape) for _ in range(4)))

    @property
    def interior(self) -> Tuple[slice, slice]:
        return (slice(GHOST, -GHOST), slice(GHOST, -GHOST))

    def fields(self) -> Tuple[np.ndarray, ...]:
        return (self.rho, self.mx, self.my, self.e)

    def copy(self) -> "EulerState2D":
        return EulerState2D(*(f.copy() for f in self.fields()))

    def primitives(self) -> Tuple[np.ndarray, ...]:
        """(rho, u, v, p) with a positivity floor on rho."""
        rho = np.maximum(self.rho, 1e-12)
        u = self.mx / rho
        v = self.my / rho
        p = (GAMMA - 1.0) * (self.e - 0.5 * rho * (u * u + v * v))
        return rho, u, v, p

    def fill_outflow_ghosts(self) -> None:
        g = GHOST
        for f in self.fields():
            f[:g] = f[g:g + 1]
            f[-g:] = f[-g - 1:-g]
            f[:, :g] = f[:, g:g + 1]
            f[:, -g:] = f[:, -g - 1:-g]

    def fill_reflecting_ghosts(self) -> None:
        """Solid walls: normal momentum flips sign in the ghosts."""
        g = GHOST
        for f, flip_x, flip_y in (
            (self.rho, 1.0, 1.0), (self.mx, -1.0, 1.0),
            (self.my, 1.0, -1.0), (self.e, 1.0, 1.0),
        ):
            f[:g] = flip_x * f[2 * g - 1:g - 1:-1]
            f[-g:] = flip_x * f[-g - 1:-2 * g - 1:-1]
            f[:, :g] = flip_y * f[:, 2 * g - 1:g - 1:-1]
            f[:, -g:] = flip_y * f[:, -g - 1:-2 * g - 1:-1]


def _hll_flux_1d(ul: Tuple[np.ndarray, ...], ur: Tuple[np.ndarray, ...]
                 ) -> Tuple[np.ndarray, ...]:
    """HLL flux for 1D Euler (normal direction = first momentum).

    Inputs are conserved tuples (rho, mn, mt, E) on each side.
    """
    def flux(w):
        rho, mn, mt, e = w
        rho = np.maximum(rho, 1e-12)
        un = mn / rho
        p = (GAMMA - 1.0) * (e - 0.5 * (mn * mn + mt * mt) / rho)
        p = np.maximum(p, 1e-12)
        return (mn, mn * un + p, mt * un, (e + p) * un), un, p, rho

    fl, ul_n, pl, rl = flux(ul)
    fr, ur_n, pr, rr = flux(ur)
    cl = np.sqrt(GAMMA * pl / rl)
    cr = np.sqrt(GAMMA * pr / rr)
    # Davis estimates
    sl = np.minimum(ul_n - cl, ur_n - cr)
    sr = np.maximum(ul_n + cl, ur_n + cr)
    out = []
    denom = np.where(np.abs(sr - sl) < 1e-300, 1e-300, sr - sl)
    for k in range(4):
        f_hll = (sr * fl[k] - sl * fr[k] + sl * sr * (ur[k] - ul[k])) / denom
        f = np.where(sl >= 0, fl[k], np.where(sr <= 0, fr[k], f_hll))
        out.append(f)
    return tuple(out)


def max_wave_speed(state: EulerState2D) -> float:
    rho, u, v, p = state.primitives()
    p = np.maximum(p, 1e-12)
    c = np.sqrt(GAMMA * p / rho)
    return float((np.abs(u) + np.abs(v)).max() + c.max())


def _sweep(state: EulerState2D, dt_over_h: float, axis: int) -> None:
    """One first-order HLL sweep along *axis* (in place, interior)."""
    fields = state.fields()
    if axis == 0:
        w = (state.rho, state.mx, state.my, state.e)
    else:
        # rotate so the normal momentum comes first
        w = (state.rho, state.my, state.mx, state.e)

    def shift(f, offset):
        if axis == 0:
            return f[GHOST - 1 + offset:f.shape[0] - GHOST + offset,
                     GHOST:-GHOST]
        return f[GHOST:-GHOST,
                 GHOST - 1 + offset:f.shape[1] - GHOST + offset]

    left = tuple(shift(f, 0) for f in w)   # cells i-1 .. n-1 (faces)
    right = tuple(shift(f, 1) for f in w)
    fluxes = _hll_flux_1d(left, right)     # one flux per interior face+1
    # un-rotate flux components
    if axis == 0:
        frho, fmx, fmy, fe = fluxes
    else:
        frho, fmy, fmx, fe = fluxes
    for f, flx in zip(fields, (frho, fmx, fmy, fe)):
        it = f[state.interior]
        if axis == 0:
            it -= dt_over_h * (flx[1:, :] - flx[:-1, :])
        else:
            it -= dt_over_h * (flx[:, 1:] - flx[:, :-1])


def hll_step_2d(
    state: EulerState2D,
    h: float,
    cfl: float = 0.4,
    boundary: str = "outflow",
    dt: Optional[float] = None,
) -> float:
    """Advance one time step (split x/y sweeps); returns dt used."""
    if boundary not in ("outflow", "reflecting"):
        raise ValueError("boundary must be 'outflow' or 'reflecting'")
    if not (0 < cfl <= 0.9):
        raise ValueError("cfl in (0, 0.9]")

    def fill():
        if boundary == "outflow":
            state.fill_outflow_ghosts()
        else:
            state.fill_reflecting_ghosts()

    fill()
    if dt is None:
        dt = cfl * h / max_wave_speed(state)
    _sweep(state, dt / h, axis=0)
    fill()
    _sweep(state, dt / h, axis=1)
    return dt


def sod_initial_condition(nx: int, ny: int, axis: int = 0) -> EulerState2D:
    """Classic Sod shock tube along *axis* (interface at midpoint)."""
    state = EulerState2D.zeros(nx, ny)
    it = state.interior
    n = nx if axis == 0 else ny
    idx = np.arange(n)
    left = idx < n // 2
    rho = np.where(left, 1.0, 0.125)
    p = np.where(left, 1.0, 0.1)
    if axis == 0:
        rho2d = np.broadcast_to(rho[:, None], (nx, ny))
        p2d = np.broadcast_to(p[:, None], (nx, ny))
    else:
        rho2d = np.broadcast_to(rho[None, :], (nx, ny))
        p2d = np.broadcast_to(p[None, :], (nx, ny))
    state.rho[it] = rho2d
    state.e[it] = p2d / (GAMMA - 1.0)
    return state


def conserved_totals(state: EulerState2D, h: float) -> Tuple[float, float, float]:
    """(mass, x-momentum, energy) integrals over the interior."""
    it = state.interior
    area = h * h
    return (
        float(state.rho[it].sum() * area),
        float(state.mx[it].sum() * area),
        float(state.e[it].sum() * area),
    )


# ---------------------------------------------------------------------------
# Exact Riemann solver (Toro) for validation
# ---------------------------------------------------------------------------

def exact_riemann(
    rho_l: float, u_l: float, p_l: float,
    rho_r: float, u_r: float, p_r: float,
    xi: np.ndarray,
    gamma: float = GAMMA,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact ideal-gas Riemann solution sampled at xi = x/t.

    Returns (rho, u, p) arrays.  Standard two-rarefaction initial
    guess + Newton iteration on the pressure function.
    """
    if min(rho_l, rho_r, p_l, p_r) <= 0:
        raise ValueError("densities and pressures must be positive")
    g = gamma
    cl = np.sqrt(g * p_l / rho_l)
    cr = np.sqrt(g * p_r / rho_r)

    def f_side(p, pk, rhok, ck):
        if p > pk:  # shock
            ak = 2.0 / ((g + 1) * rhok)
            bk = (g - 1) / (g + 1) * pk
            val = (p - pk) * np.sqrt(ak / (p + bk))
            deriv = np.sqrt(ak / (bk + p)) * (1 - (p - pk) / (2 * (bk + p)))
        else:  # rarefaction
            val = 2 * ck / (g - 1) * ((p / pk) ** ((g - 1) / (2 * g)) - 1)
            deriv = 1.0 / (rhok * ck) * (p / pk) ** (-(g + 1) / (2 * g))
        return val, deriv

    # two-rarefaction guess
    p_guess = (
        (cl + cr - 0.5 * (g - 1) * (u_r - u_l))
        / (cl / p_l ** ((g - 1) / (2 * g)) + cr / p_r ** ((g - 1) / (2 * g)))
    ) ** (2 * g / (g - 1))
    p_star = max(p_guess, 1e-10)
    for _ in range(60):
        fl, dfl = f_side(p_star, p_l, rho_l, cl)
        fr, dfr = f_side(p_star, p_r, rho_r, cr)
        delta = (fl + fr + (u_r - u_l)) / (dfl + dfr)
        p_new = max(p_star - delta, 1e-12)
        if abs(p_new - p_star) < 1e-12 * p_star:
            p_star = p_new
            break
        p_star = p_new
    fl, _ = f_side(p_star, p_l, rho_l, cl)
    fr, _ = f_side(p_star, p_r, rho_r, cr)
    u_star = 0.5 * (u_l + u_r) + 0.5 * (fr - fl)

    xi = np.asarray(xi, dtype=np.float64)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    for k, s in enumerate(xi):
        if s <= u_star:  # left of contact
            if p_star > p_l:  # left shock
                sl = u_l - cl * np.sqrt(
                    (g + 1) / (2 * g) * p_star / p_l + (g - 1) / (2 * g)
                )
                if s < sl:
                    rho[k], u[k], p[k] = rho_l, u_l, p_l
                else:
                    ratio = p_star / p_l
                    rho[k] = rho_l * (
                        (ratio + (g - 1) / (g + 1))
                        / ((g - 1) / (g + 1) * ratio + 1)
                    )
                    u[k], p[k] = u_star, p_star
            else:  # left rarefaction
                head = u_l - cl
                c_star = cl * (p_star / p_l) ** ((g - 1) / (2 * g))
                tail = u_star - c_star
                if s < head:
                    rho[k], u[k], p[k] = rho_l, u_l, p_l
                elif s > tail:
                    rho[k] = rho_l * (p_star / p_l) ** (1 / g)
                    u[k], p[k] = u_star, p_star
                else:
                    u[k] = 2 / (g + 1) * (cl + (g - 1) / 2 * u_l + s)
                    c = cl - (g - 1) / 2 * (u[k] - u_l)
                    rho[k] = rho_l * (c / cl) ** (2 / (g - 1))
                    p[k] = p_l * (c / cl) ** (2 * g / (g - 1))
        else:  # right of contact (mirror)
            if p_star > p_r:  # right shock
                sr = u_r + cr * np.sqrt(
                    (g + 1) / (2 * g) * p_star / p_r + (g - 1) / (2 * g)
                )
                if s > sr:
                    rho[k], u[k], p[k] = rho_r, u_r, p_r
                else:
                    ratio = p_star / p_r
                    rho[k] = rho_r * (
                        (ratio + (g - 1) / (g + 1))
                        / ((g - 1) / (g + 1) * ratio + 1)
                    )
                    u[k], p[k] = u_star, p_star
            else:  # right rarefaction
                head = u_r + cr
                c_star = cr * (p_star / p_r) ** ((g - 1) / (2 * g))
                tail = u_star + c_star
                if s > head:
                    rho[k], u[k], p[k] = rho_r, u_r, p_r
                elif s < tail:
                    rho[k] = rho_r * (p_star / p_r) ** (1 / g)
                    u[k], p[k] = u_star, p_star
                else:
                    u[k] = 2 / (g + 1) * (-cr + (g - 1) / 2 * u_r + s)
                    c = cr + (g - 1) / 2 * (u[k] - u_r)
                    rho[k] = rho_r * (c / cr) ** (2 / (g - 1))
                    p[k] = p_r * (c / cr) ** (2 * g / (g - 1))
    return rho, u, p
