"""CleverLeaf: the Euler mini-app on a patch level (Table 5).

Runs the HLL Euler solver over a :class:`~repro.amr.hierarchy.
PatchLevel`: per step, exchange ghosts, take one global dt (the minimum
over patches), sweep every patch, and record the kernel trace used by
the Table 5 performance model.  Multi-patch results are bitwise-
comparable to a single-grid run of the same problem (tested), which is
the decomposition-correctness contract.

Optionally refines once around steep gradients (tag + cluster +
conservative transfer) to demonstrate the AMR workflow; time stepping
stays single-rate (see DESIGN.md scope notes).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.amr.euler import (
    GHOST,
    EulerState2D,
    hll_step_2d,
    max_wave_speed,
)
from repro.amr.hierarchy import (
    PatchLevel,
    cluster_tags,
    exchange_ghosts,
    tag_gradient,
)
from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec
from repro.core.memory import QuickPool
from repro.solvers.structured import Box

FIELDS = ("rho", "mx", "my", "e")


class CleverLeaf:
    """Patch-based 2D Euler solver."""

    def __init__(
        self,
        nx: int,
        ny: int,
        h: float = 1.0,
        patch_size: int = 32,
        cfl: float = 0.4,
        pool: Optional[QuickPool] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        if nx < 4 or ny < 4:
            raise ValueError("grid too small")
        if h <= 0:
            raise ValueError("h must be positive")
        self.h = h
        self.cfl = cfl
        self.ctx = ctx
        self.level = PatchLevel(Box((0, 0), (nx, ny)),
                                patch_size=patch_size, ghost=GHOST,
                                pool=pool)
        for name in FIELDS:
            self.level.allocate(name)
        self.t = 0.0
        self.steps_taken = 0

    # ------------------------------------------------------------------

    def set_initial(self, state: EulerState2D) -> None:
        """Load a global ghosted state into the patches."""
        it = state.interior
        for name, field in zip(FIELDS, state.fields()):
            self.level.scatter_global(name, field[it])

    def global_state(self) -> EulerState2D:
        nx, ny = self.level.domain.shape
        state = EulerState2D.zeros(nx, ny)
        it = state.interior
        for name, field in zip(FIELDS, state.fields()):
            field[it] = self.level.gather_global(name)
        return state

    def _patch_state(self, patch) -> EulerState2D:
        return EulerState2D(*(patch.field(n) for n in FIELDS))

    def step(self) -> float:
        from repro.amr.euler import _sweep

        exchange_ghosts(self.level, FIELDS)
        dt = min(
            self.cfl * self.h / max_wave_speed(self._patch_state(p))
            for p in self.level.patches
        )
        # dimensional splitting with a ghost refresh between sweeps, so
        # the multi-patch run reproduces the single-grid run exactly
        for p in self.level.patches:
            _sweep(self._patch_state(p), dt / self.h, axis=0)
        exchange_ghosts(self.level, FIELDS)
        for p in self.level.patches:
            _sweep(self._patch_state(p), dt / self.h, axis=1)
        self.t += dt
        self.steps_taken += 1
        self._record_kernels()
        return dt

    def run(self, t_end: float, max_steps: int = 100_000) -> None:
        if t_end <= self.t:
            raise ValueError("t_end must exceed current time")
        for _ in range(max_steps):
            if self.t >= t_end:
                return
            self.step()
        raise RuntimeError("max_steps exceeded")

    # ------------------------------------------------------------------

    def refined_boxes(self, threshold: float = 0.05, max_boxes: int = 8
                      ) -> List[Box]:
        """Tag steep density gradients and cluster into refine boxes."""
        rho = self.level.gather_global("rho")
        tags = tag_gradient(rho, threshold)
        return [b.refine(2) for b in cluster_tags(tags, max_boxes=max_boxes)]

    def _record_kernels(self) -> None:
        if self.ctx is None:
            return
        n = self.level.domain.size
        # the hydro sweeps: flux kernels are heavy on divisions and
        # square roots (wave speeds, pressure); weighted as equivalent
        # flops these dominate the arithmetic (~380 flop-equivalents
        # per cell per step)
        self.ctx.trace.record_kernel(KernelSpec(
            name="cleverleaf-hydro", flops=380.0 * n,
            bytes_read=8.0 * 10 * n, bytes_written=8.0 * 4 * n,
            launches=6,  # per-sweep flux + update kernels
            compute_efficiency=0.35, bandwidth_efficiency=0.75,
        ))
        # ghost exchange / reductions
        self.ctx.trace.record_kernel(KernelSpec(
            name="cleverleaf-exchange", flops=1.0 * n,
            bytes_read=8.0 * n, bytes_written=8.0 * n,
            launches=4,
            compute_efficiency=0.3, bandwidth_efficiency=0.5,
        ))
