"""Patch levels, ghost exchange, tagging and clustering.

The SAMRAI machinery CleverLeaf runs on:

- :class:`PatchLevel` — a uniform tiling of a global index box into
  patches (each owning ghosted storage).
- :func:`exchange_ghosts` — copy-on-intersection ghost filling between
  sibling patches, with outflow extrapolation at physical boundaries.
- :func:`tag_gradient` / :func:`cluster_tags` — gradient-based cell
  tagging and greedy box clustering (a simplified Berger-Rigoutsos),
  producing the refined-level boxes.
- :func:`coarsen_field` / :func:`refine_field` — conservative average
  and piecewise-constant interpolation between refinement levels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.patch import Patch
from repro.core.memory import QuickPool
from repro.solvers.structured import Box


class PatchLevel:
    """Uniform tiling of ``domain`` into patches of ~``patch_size``."""

    def __init__(self, domain: Box, patch_size: int = 32, ghost: int = 2,
                 pool: Optional[QuickPool] = None):
        if domain.ndim != 2:
            raise ValueError("PatchLevel supports 2D domains")
        if patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        self.domain = domain
        self.ghost = ghost
        self.patches: List[Patch] = []
        x0, y0 = domain.lo
        x1, y1 = domain.hi
        for px in range(x0, x1, patch_size):
            for py in range(y0, y1, patch_size):
                box = Box((px, py),
                          (min(px + patch_size, x1), min(py + patch_size, y1)))
                self.patches.append(Patch(box, ghost=ghost, pool=pool))

    @property
    def n_patches(self) -> int:
        return len(self.patches)

    def allocate(self, name: str, fill: float = 0.0) -> None:
        for p in self.patches:
            p.allocate(name, fill=fill)

    def gather_global(self, name: str) -> np.ndarray:
        """Assemble the level's field into one global array (testing/IO)."""
        nx, ny = self.domain.shape
        out = np.zeros((nx, ny))
        ox, oy = self.domain.lo
        for p in self.patches:
            sl = (
                slice(p.box.lo[0] - ox, p.box.hi[0] - ox),
                slice(p.box.lo[1] - oy, p.box.hi[1] - oy),
            )
            out[sl] = p.interior(name)
        return out

    def scatter_global(self, name: str, data: np.ndarray) -> None:
        if data.shape != self.domain.shape:
            raise ValueError("global data shape mismatch")
        ox, oy = self.domain.lo
        for p in self.patches:
            sl = (
                slice(p.box.lo[0] - ox, p.box.hi[0] - ox),
                slice(p.box.lo[1] - oy, p.box.hi[1] - oy),
            )
            p.interior(name)[...] = data[sl]


def exchange_ghosts(level: PatchLevel, names: Sequence[str]) -> None:
    """Fill patch ghosts from sibling interiors; physical boundaries get
    outflow (nearest-interior) extrapolation."""
    for name in names:
        # sibling copies
        for p in level.patches:
            halo = p.box.grow(p.ghost)
            for q in level.patches:
                if q is p:
                    continue
                region = halo.intersect(q.box)
                if region is None:
                    continue
                p.view(name, region)[...] = q.view(name, region)
        # physical boundary extrapolation
        for p in level.patches:
            g = p.ghost
            f = p.field(name)
            storage = p.box.grow(g)
            dom = level.domain
            # low/high x
            if p.box.lo[0] == dom.lo[0]:
                f[:g, :] = f[g:g + 1, :]
            if p.box.hi[0] == dom.hi[0]:
                f[-g:, :] = f[-g - 1:-g, :]
            if p.box.lo[1] == dom.lo[1]:
                f[:, :g] = f[:, g:g + 1]
            if p.box.hi[1] == dom.hi[1]:
                f[:, -g:] = f[:, -g - 1:-g]


def tag_gradient(field: np.ndarray, threshold: float) -> np.ndarray:
    """Tag cells whose max neighbor difference exceeds *threshold*."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    tags = np.zeros(field.shape, dtype=bool)
    dx = np.abs(np.diff(field, axis=0))
    dy = np.abs(np.diff(field, axis=1))
    tags[:-1, :] |= dx > threshold
    tags[1:, :] |= dx > threshold
    tags[:, :-1] |= dy > threshold
    tags[:, 1:] |= dy > threshold
    return tags


def cluster_tags(tags: np.ndarray, max_boxes: int = 8,
                 efficiency: float = 0.7) -> List[Box]:
    """Greedy recursive bisection clustering of tagged cells.

    Splits a bounding box along its longest axis at the minimum of the
    tag signature until each box is *efficiency*-full of tags or the
    budget is reached — the core idea of Berger-Rigoutsos.
    """
    if not (0 < efficiency <= 1.0):
        raise ValueError("efficiency in (0, 1]")

    def bounding(t: np.ndarray, offset: Tuple[int, int]) -> Optional[Box]:
        xs, ys = np.nonzero(t)
        if xs.size == 0:
            return None
        return Box(
            (int(xs.min()) + offset[0], int(ys.min()) + offset[1]),
            (int(xs.max()) + 1 + offset[0], int(ys.max()) + 1 + offset[1]),
        )

    work = [((0, 0), tags)]
    boxes: List[Box] = []
    while work and len(boxes) + len(work) <= max_boxes:
        offset, t = work.pop()
        bb = bounding(t, offset)
        if bb is None:
            continue
        sl = (slice(bb.lo[0] - offset[0], bb.hi[0] - offset[0]),
              slice(bb.lo[1] - offset[1], bb.hi[1] - offset[1]))
        sub = t[sl]
        fill = sub.mean()
        if fill >= efficiency or min(sub.shape) <= 2:
            boxes.append(bb)
            continue
        axis = 0 if sub.shape[0] >= sub.shape[1] else 1
        signature = sub.sum(axis=1 - axis)
        interiors = signature[1:-1]
        if interiors.size == 0:
            boxes.append(bb)
            continue
        cut = 1 + int(np.argmin(interiors))
        if axis == 0:
            a, b = sub[:cut], sub[cut:]
            off_a = bb.lo
            off_b = (bb.lo[0] + cut, bb.lo[1])
        else:
            a, b = sub[:, :cut], sub[:, cut:]
            off_a = bb.lo
            off_b = (bb.lo[0], bb.lo[1] + cut)
        work.append((off_a, a))
        work.append((off_b, b))
    # flush remaining work as bounding boxes
    for offset, t in work:
        bb = bounding(t, offset)
        if bb is not None:
            boxes.append(bb)
    return boxes


def coarsen_field(fine: np.ndarray, ratio: int = 2) -> np.ndarray:
    """Conservative average (cell-centered) fine -> coarse."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    nx, ny = fine.shape
    if nx % ratio or ny % ratio:
        raise ValueError("fine shape not divisible by ratio")
    return fine.reshape(nx // ratio, ratio, ny // ratio, ratio).mean(
        axis=(1, 3)
    )


def refine_field(coarse: np.ndarray, ratio: int = 2) -> np.ndarray:
    """Piecewise-constant injection coarse -> fine (conservative)."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    return np.repeat(np.repeat(coarse, ratio, axis=0), ratio, axis=1)
