"""SAMRAI / CleverLeaf proxy: structured AMR hydrodynamics (§4.10.5).

SAMRAI provides patch-based structured adaptive mesh refinement; the
iCoE assessed its GPU port with the CleverLeaf mini-app, "which solves
the Euler equations" (Table 5: ~7X full node, ~15X P9-vs-V100).

- :mod:`repro.amr.patch` — patches (a Box plus ghosted field storage,
  allocated through the mini-Umpire pool, §4.10.5's allocation
  amortization).
- :mod:`repro.amr.hierarchy` — patch levels, ghost exchange, gradient
  tagging, box clustering, refine/coarsen transfers with conservative
  averaging.
- :mod:`repro.amr.euler` — the CleverLeaf core: 2D compressible Euler
  with HLL fluxes and dimensionally-split updates, plus an exact
  Riemann solver for validation (Sod problem).
- :mod:`repro.amr.cleverleaf` — the assembled mini-app: runs the Euler
  solver over a (optionally two-level) patch hierarchy with kernel
  tracing for the Table 5 performance model.
"""

from repro.amr.patch import Patch
from repro.amr.hierarchy import PatchLevel, cluster_tags, exchange_ghosts
from repro.amr.euler import (
    EulerState2D,
    conserved_totals,
    exact_riemann,
    hll_step_2d,
    sod_initial_condition,
)
from repro.amr.cleverleaf import CleverLeaf

__all__ = [
    "Patch",
    "PatchLevel",
    "cluster_tags",
    "exchange_ghosts",
    "EulerState2D",
    "hll_step_2d",
    "exact_riemann",
    "sod_initial_condition",
    "conserved_totals",
    "CleverLeaf",
]
