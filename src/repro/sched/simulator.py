"""Event-driven GPU-cluster simulator.

Jobs request one GPU each (the topology-optimization jobs are
single-GPU solves); the simulator advances through arrival, completion,
and fault events, consulting the policy whenever GPUs free up or jobs
arrive.  Everything observable is accounted: per-job waits and
turnaround, cluster utilization and goodput, makespan, the queue-length
time series (the signal behind the throttling recommendation), and —
when a :class:`~repro.resilience.faults.FaultInjector` is bound —
failure/retry counts and the GPU-time destroyed by faults.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs import validate as _validate


@dataclass(frozen=True)
class Job:
    """One job request."""

    job_id: int
    arrival: float
    service: float
    #: long-job class flag used by quota policies (set by workloads)
    is_long: bool = False
    #: importance class consulted by admission control (higher = more
    #: important; jobs below a controller's protected priority may be
    #: shed under pressure)
    priority: int = 0
    #: absolute completion deadline on the simulation clock; ``None``
    #: means best-effort (never shed for deadline reasons)
    deadline: Optional[float] = None
    #: owning tenant (campaign) name; ``None`` means the anonymous
    #: single-tenant regime — no per-tenant accounting, no fair-share
    #: arbitration (see :mod:`repro.tenant`)
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.service <= 0:
            raise ValueError("bad job times")
        # NOTE: arrival may legitimately exceed deadline — a fault
        # retry re-queues the job at the kill time, possibly past its
        # deadline, where admission control (if any) sheds it
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class SimResult:
    """Aggregated simulation metrics.

    ``completed`` counts jobs that finished their full service within
    the simulated window; under a ``horizon`` truncation, jobs still
    running when the clock stopped appear in ``in_flight`` (and in
    ``started``), not in ``completed``.  ``utilization`` is the
    fraction of GPU-time occupied within ``[0, makespan]`` — including
    work later destroyed by faults — while ``goodput`` counts only the
    service of jobs that completed.
    """

    makespan: float
    utilization: float
    mean_wait: float
    max_wait: float
    mean_turnaround: float
    #: jobs whose full service finished within the simulated window
    completed: int
    #: job attempts started (each retry of a killed job counts again)
    started: int = 0
    #: attempts still running when the simulation stopped
    in_flight: int = 0
    #: hard-fault events that killed a running job
    failures: int = 0
    #: killed attempts that were re-queued by the retry policy
    retries: int = 0
    #: killed jobs abandoned after the retry policy gave up
    dropped: int = 0
    #: jobs refused at enqueue time by the admission controller
    shed: int = 0
    #: GPU-seconds of work destroyed by faults
    wasted_time: float = 0.0
    #: useful GPU-time fraction: completed service / (n_gpus * makespan)
    goodput: float = 0.0
    #: (time, queue length) samples at every event
    queue_series: List[Tuple[float, int]] = field(default_factory=list)
    #: per-attempt waits, in start order (basis of the percentiles)
    waits: List[float] = field(default_factory=list)
    #: per-attempt turnarounds (wait + service), in start order
    turnarounds: List[float] = field(default_factory=list)
    #: ``(time, job_id)`` per completion, in completion order — the
    #: replay-verification surface: two runs of the same event
    #: sequence must complete the same jobs in the same order
    completions: List[Tuple[float, int]] = field(default_factory=list)
    #: per-tenant accounting (populated only for jobs with a tenant
    #: tag; anonymous jobs cost nothing here) — waits/turnarounds per
    #: started attempt, completed job counts, completed service
    #: (the "delivered" quantity fairness indices are computed over),
    #: and shed counts
    tenant_waits: Dict[str, List[float]] = field(default_factory=dict)
    tenant_turnarounds: Dict[str, List[float]] = field(
        default_factory=dict
    )
    tenant_completed: Dict[str, int] = field(default_factory=dict)
    tenant_completed_service: Dict[str, float] = field(
        default_factory=dict
    )
    tenant_shed: Dict[str, int] = field(default_factory=dict)

    @property
    def peak_queue(self) -> int:
        return max((q for _, q in self.queue_series), default=0)

    @property
    def final_queue(self) -> int:
        return self.queue_series[-1][1] if self.queue_series else 0

    @property
    def completion_order(self) -> List[int]:
        return [job_id for _, job_id in self.completions]

    @property
    def shed_rate(self) -> float:
        """Shed jobs / resolved jobs (completed, dropped, or shed)."""
        resolved = self.completed + self.dropped + self.shed
        return self.shed / resolved if resolved else 0.0

    def wait_percentile(self, q: float) -> float:
        """The *q*-th percentile wait (0 when nothing started)."""
        if not self.waits:
            return 0.0
        return float(np.percentile(self.waits, q))

    def turnaround_percentile(self, q: float) -> float:
        """The *q*-th percentile turnaround (0 when nothing started)."""
        if not self.turnarounds:
            return 0.0
        return float(np.percentile(self.turnarounds, q))

    @property
    def tenants(self) -> List[str]:
        """Every tenant that appeared in accounting, sorted."""
        names = (
            set(self.tenant_waits) | set(self.tenant_completed)
            | set(self.tenant_shed)
        )
        return sorted(names)

    def tenant_turnaround_percentile(self, name: str, q: float) -> float:
        """Per-tenant *q*-th percentile turnaround (0 if none started)."""
        values = self.tenant_turnarounds.get(name)
        if not values:
            return 0.0
        return float(np.percentile(values, q))

    def tenant_shed_rate(self, name: str) -> float:
        """Shed / (completed + shed) for one tenant (0 when idle)."""
        done = self.tenant_completed.get(name, 0)
        lost = self.tenant_shed.get(name, 0)
        total = done + lost
        return lost / total if total else 0.0


class _ReferenceQueue:
    """List-backed queue driven by ``policy.select`` — the original
    engine, O(queue) work per event.  Handles arbitrary policies and
    sanitizes their indices (out-of-range / duplicates ignored)."""

    def __init__(self, policy):
        self.policy = policy
        self.items: List[Job] = []

    def push(self, job: Job) -> None:
        self.items.append(job)

    def __len__(self) -> int:
        return len(self.items)

    def select_starts(self, n_free: int,
                      running_jobs: List[Job]) -> List[Job]:
        picks = self.policy.select(self.items, n_free, running_jobs)
        picks = [
            i for i in sorted(set(picks), reverse=True)
            if 0 <= i < len(self.items)
        ]
        return [self.items.pop(idx) for idx in picks[:n_free]]

    # Jobs are frozen dataclasses, so shallow container copies are
    # full snapshots — the durable layer pickles these states across
    # process boundaries.
    def checkpoint_state(self) -> Dict:
        return {"items": list(self.items)}

    def restore_state(self, state: Dict) -> None:
        self.items = list(state["items"])


class KeyedFastQueue:
    """Heap-ordered queue for policies whose selection is a total
    order over queued jobs (FCFS, SJF): O(log queue) per start
    instead of a full sort per event.

    Selected jobs are emitted in descending insertion order — exactly
    the order the reference engine pops its list indices — so fast and
    reference runs are bit-identical, including fault victimization,
    which depends on the running-heap layout.
    """

    def __init__(self, key: Callable[[Job], Tuple]):
        self.key = key
        self.heap: List[Tuple] = []
        self.seq = 0

    def push(self, job: Job) -> None:
        heapq.heappush(self.heap, (self.key(job), self.seq, job))
        self.seq += 1

    def __len__(self) -> int:
        return len(self.heap)

    def select_starts(self, n_free: int,
                      running_jobs: List[Job]) -> List[Job]:
        picked = []
        while len(picked) < n_free and self.heap:
            _, seq, job = heapq.heappop(self.heap)
            picked.append((seq, job))
        picked.sort(key=lambda t: -t[0])
        return [job for _, job in picked]

    def checkpoint_state(self) -> Dict:
        return {"heap": list(self.heap), "seq": self.seq}

    def restore_state(self, state: Dict) -> None:
        self.heap = list(state["heap"])
        self.seq = state["seq"]


class QuotaFastQueue:
    """Two lazy-deletion heaps implementing SJF-with-long-quota: long
    jobs ordered by arrival (the quota pulls the *oldest* long job),
    everything ordered by service (the SJF fill).  A long job lives in
    both heaps; the tombstone set lets whichever heap pops it first
    invalidate the other copy."""

    def __init__(self, n_gpus: int, long_quota: float):
        self.n_gpus = n_gpus
        self.long_quota = long_quota
        self.by_service: List[Tuple] = []
        self.long_by_arrival: List[Tuple] = []
        self.dead: Set[int] = set()
        self.seq = 0
        self.n = 0

    def push(self, job: Job) -> None:
        seq = self.seq
        self.seq += 1
        heapq.heappush(self.by_service, (job.service, job.job_id, seq, job))
        if job.is_long:
            heapq.heappush(
                self.long_by_arrival, (job.arrival, job.job_id, seq, job)
            )
        self.n += 1

    def __len__(self) -> int:
        return self.n

    def _pop(self, heap: List[Tuple]) -> Optional[Tuple[int, Job]]:
        while heap:
            _, _, seq, job = heapq.heappop(heap)
            if seq in self.dead:
                self.dead.discard(seq)
                continue
            if job.is_long:  # invalidate the copy in the other heap
                self.dead.add(seq)
            self.n -= 1
            return seq, job
        return None

    def select_starts(self, n_free: int,
                      running_jobs: List[Job]) -> List[Job]:
        reserved = int(self.long_quota * self.n_gpus)
        long_running = sum(1 for j in running_jobs if j.is_long)
        picked: List[Tuple[int, Job]] = []
        picked_long = 0
        # honor the quota first (oldest long jobs)
        while (
            long_running + picked_long < reserved and len(picked) < n_free
        ):
            item = self._pop(self.long_by_arrival)
            if item is None:
                break
            picked.append(item)
            picked_long += 1
        # fill the rest by SJF
        while len(picked) < n_free:
            item = self._pop(self.by_service)
            if item is None:
                break
            picked.append(item)
        picked.sort(key=lambda t: -t[0])
        return [job for _, job in picked]

    def checkpoint_state(self) -> Dict:
        return {
            "by_service": list(self.by_service),
            "long_by_arrival": list(self.long_by_arrival),
            "dead": set(self.dead),
            "seq": self.seq,
            "n": self.n,
        }

    def restore_state(self, state: Dict) -> None:
        self.by_service = list(state["by_service"])
        self.long_by_arrival = list(state["long_by_arrival"])
        self.dead = set(state["dead"])
        self.seq = state["seq"]
        self.n = state["n"]


def _build_queue(policy, engine: str, n_gpus: int):
    """Resolve *engine* ("auto"/"fast"/"reference") to a queue object."""
    if engine not in ("auto", "fast", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    factory = getattr(policy, "fast_queue", None)
    if engine == "reference" or (engine == "auto" and factory is None):
        return _ReferenceQueue(policy)
    if factory is None:
        raise ValueError(
            f"policy {type(policy).__name__} has no fast queue; "
            "use engine='reference'"
        )
    return factory(n_gpus)


class _StreamSource:
    """One-job lookahead over a lazily generated arrival stream.

    Presents exactly the interface the event loop needs — the next
    arrival time (``peek_time``) and the next job (``pop``) — while
    pulling from a generator that may be unbounded.  The horizon is
    the cut: the first job whose arrival exceeds it marks the source
    exhausted *without being offered*, which is precisely how a
    materialized job list truncated at the horizon behaves (jobs with
    ``arrival <= horizon`` offered, the strict ``t_next > horizon``
    stop untouched).  That equivalence — streamed session ≡
    materialized session on the truncated list — is gated by test.

    Arrivals must be nondecreasing (generated streams are; a shuffled
    source would need materializing and sorting anyway).
    """

    __slots__ = ("horizon", "exhausted", "_it", "_next", "_last_t")

    def __init__(self, it, horizon: float):
        self._it = iter(it)
        self.horizon = horizon
        self.exhausted = False
        self._next: Optional[Job] = None
        self._last_t = float("-inf")
        self._advance()

    def _advance(self) -> None:
        try:
            job = next(self._it)
        except StopIteration:
            self._next, self._it, self.exhausted = None, None, True
            return
        if job.arrival < self._last_t:
            raise ValueError(
                "stream arrivals must be nondecreasing "
                f"({job.arrival} after {self._last_t})"
            )
        self._last_t = job.arrival
        if job.arrival > self.horizon:
            self._next, self._it, self.exhausted = None, None, True
        else:
            self._next = job

    def peek_time(self) -> float:
        return self._next.arrival if self._next is not None else float("inf")

    def pop(self) -> Job:
        job = self._next
        self._advance()
        return job


class SimulatorSession:
    """Stepwise, checkpointable twin of the batch event loop.

    One :meth:`step` processes one event (arrival/re-queue batch,
    completion, or fault), after which the session can snapshot its
    **entire** live state — event heaps, queue contents, per-job
    attempt counts, accounting, the fault injector's RNG, and the
    admission controller's breaker — and restore it later, in this
    process or another one.  Driving a session to completion produces
    a :class:`SimResult` bit-identical to
    :meth:`ClusterSimulator.run` on the same inputs (enforced by the
    equivalence matrix in ``tests/test_durable.py``): the repo's
    usual reference-vs-fast dualism, with the batch loop as the fast
    engine and this class as the rewindable one.

    The session satisfies the stepper protocol of
    :class:`~repro.resilience.ResilientDriver` and
    :class:`~repro.durable.ResumableCampaign` (``step`` / ``done`` /
    ``progress`` / ``checkpoint_state`` / ``restore_state``), which
    is what lets a SIGKILLed scheduler run resume from its journaled
    event-heap state mid-schedule.  Restoring requires a session
    constructed with the same jobs, policy, and engine as the one
    that checkpointed.

    Two capture-mode extensions (both default-off, with zero effect
    on the materialized path): ``stream=`` feeds the session from a
    lazy job generator bounded by the horizon instead of a
    materialized list (see :class:`_StreamSource`; such sessions are
    not checkpointable — the generator state cannot be snapshotted),
    and ``tap=`` attaches an observer whose ``on_job(job)`` is called
    once per offered job and ``on_decision(kind, t, job_id)`` on
    sheds, completions, faults, and drops — the hook live trace
    capture hangs off.
    """

    def __init__(
        self,
        n_gpus: int,
        jobs: Optional[Sequence[Job]],
        policy=None,
        horizon: Optional[float] = None,
        fault_injector=None,
        retry_policy=None,
        engine: str = "auto",
        admission=None,
        queue=None,
        stream=None,
        tap=None,
    ):
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if stream is not None:
            if jobs is not None:
                raise ValueError("pass jobs or stream, not both")
            if horizon is None:
                raise ValueError(
                    "streamed sessions need a horizon (the stream "
                    "may be unbounded)"
                )
        else:
            jobs = list(jobs)  # accept any iterable (arrival streams)
            if not jobs:
                raise ValueError("no jobs to schedule")
        if queue is None:
            if policy is None:
                raise ValueError("pass a policy (or a prebuilt queue)")
            queue = _build_queue(policy, engine, n_gpus)
        self.n_gpus = n_gpus
        self.horizon = horizon
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.admission = admission
        self.queue = queue
        self.tap = tap
        # bound-method cache for the hot loop: a tap that opts out of
        # a hook (``on_decision = None``) costs nothing per event
        self._tap_job = None if tap is None else \
            getattr(tap, "on_job", None)
        self._tap_decision = None if tap is None else \
            getattr(tap, "on_decision", None)
        # --- live event-loop state (the checkpointed part) ----------
        if stream is not None:
            self.jobs = None
            self._stream = _StreamSource(stream, horizon)
            self.n = 0  # grows as the stream offers jobs
            self.arrivals = []
        else:
            self.jobs = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
            self._stream = None
            self.n = len(self.jobs)
            self.arrivals = [(j.arrival, j.job_id, j) for j in self.jobs]
        self.next_arrival = 0
        self.requeues: List[Tuple[float, int, Job]] = []
        self.requeue_seq = 0
        self.running: List[Tuple[float, int, Job, float]] = []
        self.waits: List[float] = []
        self.turnarounds: List[float] = []
        self.busy_time = 0.0
        self.useful_time = 0.0
        self.wasted_time = 0.0
        self.t = 0.0
        self.queue_series: List[Tuple[float, int]] = []
        self.completions: List[Tuple[float, int]] = []
        self.completed = 0
        self.dropped = 0
        self.shed = 0
        self.failures = 0
        self.retries = 0
        self.started = 0
        self.attempts: Dict[int, int] = {}
        self.tenant_waits: Dict[str, List[float]] = {}
        self.tenant_turnarounds: Dict[str, List[float]] = {}
        self.tenant_completed: Dict[str, int] = {}
        self.tenant_completed_service: Dict[str, float] = {}
        self.tenant_shed: Dict[str, int] = {}
        self.events = 0
        self.next_fault = (
            fault_injector.next_fault_after(0.0)
            if fault_injector is not None else float("inf")
        )
        self._finished = False
        self._metrics_emitted = False

    # -- stepper protocol ----------------------------------------------

    @property
    def progress(self) -> int:
        """Events processed (the unit a durable driver journals)."""
        return self.events

    @property
    def done(self) -> bool:
        if self._stream is not None and not self._stream.exhausted:
            # more offered work may still arrive inside the horizon
            return self._finished
        return (
            self._finished
            or self.completed + self.dropped + self.shed >= self.n
        )

    def _start_ready(self, now: float) -> None:
        queue, running = self.queue, self.running
        while len(queue) and len(running) < self.n_gpus:
            free = self.n_gpus - len(running)
            batch = queue.select_starts(free, [j for _, _, j, _ in running])
            if not batch:
                break
            for job in batch:
                self.waits.append(now - job.arrival)
                self.turnarounds.append(now - job.arrival + job.service)
                if job.tenant is not None:
                    self.tenant_waits.setdefault(job.tenant, []).append(
                        now - job.arrival
                    )
                    self.tenant_turnarounds.setdefault(
                        job.tenant, []
                    ).append(now - job.arrival + job.service)
                heapq.heappush(
                    running, (now + job.service, job.job_id, job, now)
                )
                self.started += 1

    def _enqueue(self, job: Job, now: float) -> bool:
        if self.admission is not None and not self.admission.admit(
            job, now=now, queue_len=len(self.queue),
            n_running=len(self.running), n_gpus=self.n_gpus,
        ):
            self.shed += 1
            if job.tenant is not None:
                self.tenant_shed[job.tenant] = (
                    self.tenant_shed.get(job.tenant, 0) + 1
                )
            if self._tap_decision is not None:
                self._tap_decision("shed", now, job.job_id)
            return False
        self.queue.push(job)
        return True

    def step(self) -> bool:
        """Process one event; False when the schedule is resolved.

        A verbatim port of one iteration of the batch event loop —
        same event ordering (completion beats fault beats
        arrival/re-queue at equal times), same horizon and
        starvation-break semantics — so a session stepped to
        completion is bit-identical to the batch engine.
        """
        if self.done:
            self._finished = True
            return False
        inf = float("inf")
        self.events += 1
        if self._stream is not None:
            t_arr = self._stream.peek_time()
        else:
            t_arr = (
                self.arrivals[self.next_arrival][0]
                if self.next_arrival < len(self.arrivals) else inf
            )
        t_req = self.requeues[0][0] if self.requeues else inf
        t_fin = self.running[0][0] if self.running else inf
        t_fault = self.next_fault if self.fault_injector is not None else inf
        t_work = min(t_arr, t_req, t_fin)
        if t_work == inf:
            # only fault events (or nothing) remain: the policy is
            # refusing to start the leftover queue — no progress
            self._finished = True
            return False
        t_next = min(t_work, t_fault)
        if self.horizon is not None and t_next > self.horizon:
            self.t = self.horizon
            self._finished = True
            return False
        self.t = t = t_next
        if t_fin <= t_next and self.running:
            finish, _, job, start = heapq.heappop(self.running)
            self.completed += 1
            self.completions.append((t, job.job_id))
            if self._tap_decision is not None:
                self._tap_decision("complete", t, job.job_id)
            self.busy_time += finish - start
            self.useful_time += job.service
            if job.tenant is not None:
                self.tenant_completed[job.tenant] = (
                    self.tenant_completed.get(job.tenant, 0) + 1
                )
                self.tenant_completed_service[job.tenant] = (
                    self.tenant_completed_service.get(job.tenant, 0.0)
                    + job.service
                )
            if self.admission is not None:
                self.admission.record_success(t, job=job)
        elif t_fault <= t_next and self.fault_injector is not None:
            self.next_fault = self.fault_injector.next_fault_after(t)
            if self.running:
                victim = self.fault_injector.pick_victim(len(self.running))
                _, job_id, job, start = self.running.pop(victim)
                heapq.heapify(self.running)
                self.failures += 1
                if self._tap_decision is not None:
                    self._tap_decision("fault", t, job_id)
                lost = t - start
                self.busy_time += lost
                self.wasted_time += lost
                if self.admission is not None:
                    self.admission.record_failure(t, job=job)
                attempt = self.attempts.get(job_id, 0) + 1
                self.attempts[job_id] = attempt
                delay = (
                    0.0 if self.retry_policy is None
                    else self.retry_policy.requeue_delay(attempt)
                )
                if delay is None:
                    self.dropped += 1
                    if self._tap_decision is not None:
                        self._tap_decision("drop", t, job_id)
                else:
                    self.retries += 1
                    self.requeue_seq += 1
                    heapq.heappush(self.requeues, (
                        t + delay, self.requeue_seq,
                        replace(job, arrival=t + delay),
                    ))
        else:
            if self._stream is not None:
                while self._stream.peek_time() <= t:
                    job = self._stream.pop()
                    self.n += 1
                    if self._tap_job is not None:
                        self._tap_job(job)
                    self._enqueue(job, t)
            else:
                while (
                    self.next_arrival < len(self.arrivals)
                    and self.arrivals[self.next_arrival][0] <= t
                ):
                    job = self.arrivals[self.next_arrival][2]
                    if self._tap_job is not None:
                        self._tap_job(job)
                    self._enqueue(job, t)
                    self.next_arrival += 1
            while self.requeues and self.requeues[0][0] <= t:
                self._enqueue(heapq.heappop(self.requeues)[2], t)
        self._start_ready(t)
        self.queue_series.append((t, len(self.queue)))
        return True

    def run_to_completion(self) -> SimResult:
        while self.step():
            pass
        return self.result()

    def result(self) -> SimResult:
        """The :class:`SimResult` for the work processed so far."""
        makespan = self.t
        busy = self.busy_time
        for finish, _, job, start in self.running:
            busy += max(0.0, min(finish, makespan) - start)
        capacity = self.n_gpus * makespan
        util = busy / capacity if makespan > 0 else 0.0
        goodput = self.useful_time / capacity if makespan > 0 else 0.0
        if self.done and not self._metrics_emitted:
            self._metrics_emitted = True
            _metrics.counter("sched.runs").add()
            _metrics.counter("sched.events_processed").add(self.events)
            _metrics.counter("sched.jobs_started").add(self.started)
            _metrics.counter("sched.jobs_completed").add(self.completed)
            if self.failures:
                _metrics.counter("sched.faults_injected").add(self.failures)
            if self.shed:
                _metrics.counter("sched.jobs_shed").add(self.shed)
        return SimResult(
            makespan=makespan,
            utilization=min(util, 1.0),
            mean_wait=float(np.mean(self.waits)) if self.waits else 0.0,
            max_wait=float(np.max(self.waits)) if self.waits else 0.0,
            mean_turnaround=(
                float(np.mean(self.turnarounds)) if self.turnarounds
                else 0.0
            ),
            completed=self.completed,
            started=self.started,
            in_flight=len(self.running),
            failures=self.failures,
            retries=self.retries,
            dropped=self.dropped,
            shed=self.shed,
            wasted_time=self.wasted_time,
            goodput=min(goodput, 1.0),
            queue_series=list(self.queue_series),
            waits=list(self.waits),
            turnarounds=list(self.turnarounds),
            completions=list(self.completions),
            tenant_waits={
                k: list(v) for k, v in self.tenant_waits.items()
            },
            tenant_turnarounds={
                k: list(v) for k, v in self.tenant_turnarounds.items()
            },
            tenant_completed=dict(self.tenant_completed),
            tenant_completed_service=dict(self.tenant_completed_service),
            tenant_shed=dict(self.tenant_shed),
        )

    # -- checkpoint protocol -------------------------------------------

    def checkpoint_state(self) -> Dict:
        """Snapshot everything the event loop reads: heaps, queue,
        clocks, accounting, and the injector/admission streams.  Jobs
        are frozen dataclasses, so shallow container copies are full
        snapshots, and the whole dict is picklable for the durable
        layer."""
        if self._stream is not None:
            raise RuntimeError(
                "streamed sessions are not checkpointable — the "
                "generator's state cannot be snapshotted; capture the "
                "stream to a trace and resume from the materialized jobs"
            )
        return {
            "next_arrival": self.next_arrival,
            "requeues": list(self.requeues),
            "requeue_seq": self.requeue_seq,
            "running": list(self.running),
            "waits": list(self.waits),
            "turnarounds": list(self.turnarounds),
            "busy_time": self.busy_time,
            "useful_time": self.useful_time,
            "wasted_time": self.wasted_time,
            "t": self.t,
            "queue_series": list(self.queue_series),
            "completions": list(self.completions),
            "completed": self.completed,
            "dropped": self.dropped,
            "shed": self.shed,
            "failures": self.failures,
            "retries": self.retries,
            "started": self.started,
            "attempts": dict(self.attempts),
            "tenant_waits": {
                k: list(v) for k, v in self.tenant_waits.items()
            },
            "tenant_turnarounds": {
                k: list(v) for k, v in self.tenant_turnarounds.items()
            },
            "tenant_completed": dict(self.tenant_completed),
            "tenant_completed_service": dict(
                self.tenant_completed_service
            ),
            "tenant_shed": dict(self.tenant_shed),
            "events": self.events,
            "next_fault": self.next_fault,
            "finished": self._finished,
            "queue": self.queue.checkpoint_state(),
            "injector": (
                None if self.fault_injector is None
                else self.fault_injector.checkpoint_state()
            ),
            "admission": (
                None if self.admission is None
                else self.admission.checkpoint_state()
            ),
        }

    def restore_state(self, state: Dict) -> None:
        self.next_arrival = state["next_arrival"]
        self.requeues = list(state["requeues"])
        self.requeue_seq = state["requeue_seq"]
        self.running = list(state["running"])
        self.waits = list(state["waits"])
        self.turnarounds = list(state["turnarounds"])
        self.busy_time = state["busy_time"]
        self.useful_time = state["useful_time"]
        self.wasted_time = state["wasted_time"]
        self.t = state["t"]
        self.queue_series = list(state["queue_series"])
        self.completions = [
            (t, j) for t, j in state.get("completions", [])
        ]
        self.completed = state["completed"]
        self.dropped = state["dropped"]
        self.shed = state["shed"]
        self.failures = state["failures"]
        self.retries = state["retries"]
        self.started = state["started"]
        self.attempts = dict(state["attempts"])
        self.tenant_waits = {
            k: list(v) for k, v in state.get("tenant_waits", {}).items()
        }
        self.tenant_turnarounds = {
            k: list(v)
            for k, v in state.get("tenant_turnarounds", {}).items()
        }
        self.tenant_completed = dict(state.get("tenant_completed", {}))
        self.tenant_completed_service = dict(
            state.get("tenant_completed_service", {})
        )
        self.tenant_shed = dict(state.get("tenant_shed", {}))
        self.events = state["events"]
        self.next_fault = state["next_fault"]
        self._finished = state["finished"]
        self.queue.restore_state(state["queue"])
        if self.fault_injector is not None and state["injector"] is not None:
            self.fault_injector.restore_state(state["injector"])
        if self.admission is not None and state["admission"] is not None:
            self.admission.restore_state(state["admission"])


class ClusterSimulator:
    """Simulate *jobs* on ``n_gpus`` GPUs under *policy*.

    The policy object must implement
    ``select(queue, n_free, running) -> list of queue indices`` —
    which queued jobs to start now.  Out-of-range and duplicate
    indices are ignored (a buggy policy cannot corrupt the event
    state, it can only schedule suboptimally).

    Policies may additionally expose ``fast_queue(n_gpus)`` returning
    a heap-backed queue (:class:`KeyedFastQueue` /
    :class:`QuotaFastQueue`); the ``engine="auto"`` default then skips
    ``select`` entirely and runs the O(events·log queue) fast path,
    which produces bit-identical results to the reference engine.
    """

    def __init__(self, n_gpus: int):
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.n_gpus = n_gpus

    def _make_queue(self, policy, engine: str):
        return _build_queue(policy, engine, self.n_gpus)

    def session(
        self,
        jobs: Sequence[Job],
        policy,
        horizon: Optional[float] = None,
        fault_injector=None,
        retry_policy=None,
        engine: str = "auto",
        admission=None,
    ) -> SimulatorSession:
        """A stepwise, checkpointable run of the same event loop.

        Same inputs and bit-identical results as :meth:`run`, but
        advanced one event at a time with full
        ``checkpoint_state``/``restore_state`` support — the entry
        point the durable layer uses to SIGKILL and resume a
        schedule mid-flight.
        """
        return SimulatorSession(
            self.n_gpus, jobs, policy, horizon=horizon,
            fault_injector=fault_injector, retry_policy=retry_policy,
            engine=engine, admission=admission,
        )

    def run(
        self,
        jobs: Sequence[Job],
        policy,
        horizon: Optional[float] = None,
        fault_injector=None,
        retry_policy=None,
        engine: str = "auto",
        admission=None,
    ) -> SimResult:
        """Run the event loop until every job is resolved.

        With a *fault_injector*, hard faults arrive as a Poisson
        process (the injector's MTBF); each fault kills one running
        job, whose work so far is wasted.  The *retry_policy*
        (``requeue_delay(attempt) -> delay | None``) decides whether
        and when the killed job re-enters the queue; ``None`` retries
        immediately and forever.  A job is *resolved* when it
        completes, is dropped by the retry policy, or is shed by the
        admission controller.

        *admission* (a
        :class:`repro.guard.deadline.AdmissionController` or anything
        with the same ``admit``/``record_failure``/``record_success``
        surface) is consulted at every enqueue — first arrivals and
        post-fault re-queues alike — and may shed jobs whose deadline
        is unmeetable or whose priority is unprotected under pressure;
        shed jobs count in ``SimResult.shed``.  Fault kills and
        completions feed its breaker.

        ``engine`` selects the queue implementation: ``"reference"``
        (policy.select over a list), ``"fast"`` (heap-backed, requires
        the policy to provide ``fast_queue``), or ``"auto"`` — fast
        when available, reference otherwise.

        With ``REPRO_OBS_VALIDATE`` set and a fast queue in play, the
        run is validated: the reference engine replays the same jobs
        (and, via checkpoint/restore, the same fault schedule) and the
        two :class:`SimResult`\\ s must be bit-identical — the PR 2
        fast-engine contract, enforced at runtime.
        """
        jobs = list(jobs)  # accept any iterable (arrival streams)
        if not jobs:
            raise ValueError("no jobs to schedule")
        jobs = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        queue = self._make_queue(policy, engine)
        is_fast = not isinstance(queue, _ReferenceQueue)
        with _trace.span("sched.run", jobs=len(jobs), gpus=self.n_gpus,
                         engine="fast" if is_fast else "reference"):
            if is_fast and _validate.validation_enabled():
                return self._run_validated(
                    jobs, policy, horizon, fault_injector, retry_policy,
                    queue, admission,
                )
            return self._run_events(
                jobs, horizon, fault_injector, retry_policy, queue,
                admission,
            )

    def _run_validated(
        self, jobs, policy, horizon, fault_injector, retry_policy, queue,
        admission=None,
    ) -> SimResult:
        """Run fast, replay on the reference engine, demand equality.

        The fault injector's RNG (and the admission controller's
        breaker state) is checkpointed before the fast run and restored
        for the replay so both engines see the same fault schedule and
        shed decisions; afterwards each is left in the post-fast-run
        state, as if only the fast run had happened.
        """
        pre = (
            fault_injector.checkpoint_state()
            if fault_injector is not None else None
        )
        pre_adm = (
            admission.checkpoint_state() if admission is not None else None
        )
        fast = self._run_events(
            jobs, horizon, fault_injector, retry_policy, queue, admission
        )
        if fault_injector is not None:
            post = fault_injector.checkpoint_state()
            fault_injector.restore_state(pre)
        if admission is not None:
            post_adm = admission.checkpoint_state()
            admission.restore_state(pre_adm)
        ref = self._run_events(
            jobs, horizon, fault_injector, retry_policy,
            _ReferenceQueue(policy), admission,
        )
        if fault_injector is not None:
            fault_injector.restore_state(post)
        if admission is not None:
            admission.restore_state(post_adm)
        _validate.check(
            "sched.engine", fast == ref,
            f"fast {fast.makespan=} {fast.completed=} vs "
            f"reference {ref.makespan=} {ref.completed=}",
        )
        return fast

    def _run_events(
        self, jobs, horizon, fault_injector, retry_policy, queue,
        admission=None,
    ) -> SimResult:
        """The event loop proper, on an already-constructed queue."""
        n = len(jobs)
        arrivals = [(j.arrival, j.job_id, j) for j in jobs]
        next_arrival = 0
        #: re-queued attempts of killed jobs: (ready_time, seq, job)
        requeues: List[Tuple[float, int, Job]] = []
        requeue_seq = 0
        #: (finish_time, job_id, job, start_time)
        running: List[Tuple[float, int, Job, float]] = []
        waits: List[float] = []
        turnarounds: List[float] = []
        busy_time = 0.0   # occupied GPU-time, incl. work later wasted
        useful_time = 0.0  # service of completed jobs only
        wasted_time = 0.0
        t = 0.0
        queue_series: List[Tuple[float, int]] = []
        completions: List[Tuple[float, int]] = []
        completed = 0
        dropped = 0
        shed = 0
        failures = 0
        retries = 0
        started = 0
        attempts: Dict[int, int] = {}
        tenant_waits: Dict[str, List[float]] = {}
        tenant_turnarounds: Dict[str, List[float]] = {}
        tenant_completed: Dict[str, int] = {}
        tenant_completed_service: Dict[str, float] = {}
        tenant_shed: Dict[str, int] = {}
        inf = float("inf")
        next_fault = (
            fault_injector.next_fault_after(0.0)
            if fault_injector is not None else inf
        )

        def start_ready(now: float) -> None:
            nonlocal started
            while len(queue) and len(running) < self.n_gpus:
                free = self.n_gpus - len(running)
                batch = queue.select_starts(
                    free, [j for _, _, j, _ in running]
                )
                if not batch:
                    break
                for job in batch:
                    waits.append(now - job.arrival)
                    turnarounds.append(now - job.arrival + job.service)
                    if job.tenant is not None:
                        tenant_waits.setdefault(job.tenant, []).append(
                            now - job.arrival
                        )
                        tenant_turnarounds.setdefault(
                            job.tenant, []
                        ).append(now - job.arrival + job.service)
                    heapq.heappush(
                        running,
                        (now + job.service, job.job_id, job, now),
                    )
                    started += 1

        def enqueue(job: Job, now: float) -> bool:
            """Admission-gated queue push; returns False when shed."""
            nonlocal shed
            if admission is not None and not admission.admit(
                job, now=now, queue_len=len(queue),
                n_running=len(running), n_gpus=self.n_gpus,
            ):
                shed += 1
                if job.tenant is not None:
                    tenant_shed[job.tenant] = (
                        tenant_shed.get(job.tenant, 0) + 1
                    )
                return False
            queue.push(job)
            return True

        events = 0
        while completed + dropped + shed < n:
            events += 1
            # next event: arrival, re-queue, completion, or fault
            t_arr = (
                arrivals[next_arrival][0]
                if next_arrival < len(arrivals) else inf
            )
            t_req = requeues[0][0] if requeues else inf
            t_fin = running[0][0] if running else inf
            t_fault = next_fault if fault_injector is not None else inf
            t_work = min(t_arr, t_req, t_fin)
            if t_work == inf:
                # Only fault events (or nothing) remain: the policy is
                # refusing to start the leftover queue, so no further
                # progress is possible.
                break
            t_next = min(t_work, t_fault)
            if horizon is not None and t_next > horizon:
                t = horizon
                break
            t = t_next
            if t_fin <= t_next and running:
                finish, _, job, start = heapq.heappop(running)
                completed += 1
                completions.append((t, job.job_id))
                busy_time += finish - start
                useful_time += job.service
                if job.tenant is not None:
                    tenant_completed[job.tenant] = (
                        tenant_completed.get(job.tenant, 0) + 1
                    )
                    tenant_completed_service[job.tenant] = (
                        tenant_completed_service.get(job.tenant, 0.0)
                        + job.service
                    )
                if admission is not None:
                    admission.record_success(t, job=job)
            elif t_fault <= t_next and fault_injector is not None:
                next_fault = fault_injector.next_fault_after(t)
                if running:
                    victim = fault_injector.pick_victim(len(running))
                    _, job_id, job, start = running.pop(victim)
                    heapq.heapify(running)
                    failures += 1
                    lost = t - start
                    busy_time += lost
                    wasted_time += lost
                    if admission is not None:
                        admission.record_failure(t, job=job)
                    attempt = attempts.get(job_id, 0) + 1
                    attempts[job_id] = attempt
                    delay = (
                        0.0 if retry_policy is None
                        else retry_policy.requeue_delay(attempt)
                    )
                    if delay is None:
                        dropped += 1
                    else:
                        retries += 1
                        requeue_seq += 1
                        heapq.heappush(requeues, (
                            t + delay, requeue_seq,
                            replace(job, arrival=t + delay),
                        ))
            else:
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival][0] <= t
                ):
                    enqueue(arrivals[next_arrival][2], t)
                    next_arrival += 1
                while requeues and requeues[0][0] <= t:
                    enqueue(heapq.heappop(requeues)[2], t)
            start_ready(t)
            queue_series.append((t, len(queue)))

        makespan = t
        # attempts still on a GPU delivered occupancy up to the clock stop
        for finish, _, job, start in running:
            busy_time += max(0.0, min(finish, makespan) - start)
        capacity = self.n_gpus * makespan
        util = busy_time / capacity if makespan > 0 else 0.0
        goodput = useful_time / capacity if makespan > 0 else 0.0
        # batched observability: one add per metric per run, never
        # per event (the disabled-overhead contract of repro.obs)
        _metrics.counter("sched.runs").add()
        _metrics.counter("sched.events_processed").add(events)
        _metrics.counter("sched.jobs_started").add(started)
        _metrics.counter("sched.jobs_completed").add(completed)
        if failures:
            _metrics.counter("sched.faults_injected").add(failures)
        if shed:
            _metrics.counter("sched.jobs_shed").add(shed)
        return SimResult(
            makespan=makespan,
            utilization=min(util, 1.0),
            mean_wait=float(np.mean(waits)) if waits else 0.0,
            max_wait=float(np.max(waits)) if waits else 0.0,
            mean_turnaround=(
                float(np.mean(turnarounds)) if turnarounds else 0.0
            ),
            completed=completed,
            started=started,
            in_flight=len(running),
            failures=failures,
            retries=retries,
            dropped=dropped,
            shed=shed,
            wasted_time=wasted_time,
            goodput=min(goodput, 1.0),
            queue_series=queue_series,
            waits=waits,
            turnarounds=turnarounds,
            completions=completions,
            tenant_waits=tenant_waits,
            tenant_turnarounds=tenant_turnarounds,
            tenant_completed=tenant_completed,
            tenant_completed_service=tenant_completed_service,
            tenant_shed=tenant_shed,
        )
