"""Event-driven GPU-cluster simulator.

Jobs request one GPU each (the topology-optimization jobs are
single-GPU solves); the simulator advances through arrival and
completion events, consulting the policy whenever GPUs free up or jobs
arrive.  Everything observable is accounted: per-job waits and
turnaround, cluster utilization, makespan, and the queue-length
time series (the signal behind the throttling recommendation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Job:
    """One job request."""

    job_id: int
    arrival: float
    service: float
    #: long-job class flag used by quota policies (set by workloads)
    is_long: bool = False

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.service <= 0:
            raise ValueError("bad job times")


@dataclass
class SimResult:
    """Aggregated simulation metrics."""

    makespan: float
    utilization: float
    mean_wait: float
    max_wait: float
    mean_turnaround: float
    completed: int
    #: (time, queue length) samples at every event
    queue_series: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def peak_queue(self) -> int:
        return max((q for _, q in self.queue_series), default=0)

    @property
    def final_queue(self) -> int:
        return self.queue_series[-1][1] if self.queue_series else 0


class ClusterSimulator:
    """Simulate *jobs* on ``n_gpus`` GPUs under *policy*.

    The policy object must implement
    ``select(queue, n_free, running) -> list of queue indices`` —
    which queued jobs to start now.
    """

    def __init__(self, n_gpus: int):
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.n_gpus = n_gpus

    def run(self, jobs: Sequence[Job], policy,
            horizon: Optional[float] = None) -> SimResult:
        if not jobs:
            raise ValueError("no jobs to schedule")
        jobs = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        n = len(jobs)
        arrivals = [(j.arrival, j.job_id, j) for j in jobs]
        next_arrival = 0
        #: (finish_time, job_id, job)
        running: List[Tuple[float, int, Job]] = []
        queue: List[Job] = []
        waits: List[float] = []
        turnarounds: List[float] = []
        busy_time = 0.0
        t = 0.0
        queue_series: List[Tuple[float, int]] = []
        completed = 0

        def start_ready(now: float) -> None:
            nonlocal busy_time
            while queue and len(running) < self.n_gpus:
                free = self.n_gpus - len(running)
                picks = policy.select(queue, free,
                                      [j for _, _, j in running])
                if not picks:
                    break
                picks = sorted(set(picks), reverse=True)
                for idx in picks[:free]:
                    job = queue.pop(idx)
                    waits.append(now - job.arrival)
                    turnarounds.append(now - job.arrival + job.service)
                    busy_time += job.service
                    heapq.heappush(
                        running, (now + job.service, job.job_id, job)
                    )

        while completed < n:
            # next event: arrival or completion
            t_arr = (
                arrivals[next_arrival][0]
                if next_arrival < len(arrivals) else np.inf
            )
            t_fin = running[0][0] if running else np.inf
            t_next = min(t_arr, t_fin)
            if horizon is not None and t_next > horizon:
                t = horizon
                break
            t = t_next
            if t_fin <= t_arr and running:
                heapq.heappop(running)
                completed += 1
            else:
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival][0] <= t
                ):
                    queue.append(arrivals[next_arrival][2])
                    next_arrival += 1
            start_ready(t)
            queue_series.append((t, len(queue)))

        makespan = t
        util = busy_time / (self.n_gpus * makespan) if makespan > 0 else 0.0
        return SimResult(
            makespan=makespan,
            utilization=min(util, 1.0),
            mean_wait=float(np.mean(waits)) if waits else 0.0,
            max_wait=float(np.max(waits)) if waits else 0.0,
            mean_turnaround=(
                float(np.mean(turnarounds)) if turnarounds else 0.0
            ),
            completed=completed,
            queue_series=queue_series,
        )
