"""Opt workflow: the GPU-cluster job scheduler simulator (§4.7).

The topology-optimization workload schedules "thousands of small jobs"
under uncertainty; the vendor team "developed a job scheduler simulator
and studied job requests that follow an arrival rate distribution and
compared that to job requests that arrive in a batch", concluding:
throttle distribution arrivals below aggregate GPU capacity, and use
Shortest Job First with Quota for batch arrivals.

- :mod:`repro.sched.simulator` — event-driven cluster simulator:
  GPUs, job queue, pluggable policy, full metric accounting
  (utilization, waits, makespan, queue growth).
- :mod:`repro.sched.policies` — FCFS, SJF, and SJF-with-quota (short
  jobs jump the queue, but long-running jobs keep a reserved share of
  GPUs so they cannot starve).
- :mod:`repro.sched.workloads` — the topology-optimization job mix:
  batch submissions and Poisson arrival streams with lognormal service
  demands.
"""

from repro.sched.simulator import (
    ClusterSimulator,
    Job,
    KeyedFastQueue,
    QuotaFastQueue,
    SimResult,
    SimulatorSession,
)
from repro.sched.policies import Fcfs, Sjf, SjfWithQuota
from repro.sched.workloads import (
    batch_workload,
    draw_services,
    jobs_from_arrivals,
    offered_load,
    poisson_workload,
)

__all__ = [
    "Job",
    "ClusterSimulator",
    "SimResult",
    "SimulatorSession",
    "KeyedFastQueue",
    "QuotaFastQueue",
    "Fcfs",
    "Sjf",
    "SjfWithQuota",
    "batch_workload",
    "draw_services",
    "jobs_from_arrivals",
    "offered_load",
    "poisson_workload",
]
