"""Scheduling policies.

``select(queue, n_free, running)`` returns indices into *queue* for
the jobs to start now (at most ``n_free``).  The paper's batch-arrival
recommendation is :class:`SjfWithQuota` — SJF's utilization benefits
"assuming availability of job duration information", with a reserved
share for long jobs so SJF's classic starvation pathology cannot
develop.

Each built-in policy also provides ``fast_queue(n_gpus)``, the hook
:class:`~repro.sched.simulator.ClusterSimulator` uses (under the
default ``engine="auto"``) to replace the per-event ``select`` sort
with a heap-backed queue.  Fast and reference engines produce
bit-identical schedules; custom policies without the hook simply run
on the reference engine.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sched.simulator import Job, KeyedFastQueue, QuotaFastQueue


class Fcfs:
    """First come, first served."""

    def select(self, queue: Sequence[Job], n_free: int,
               running: Sequence[Job]) -> List[int]:
        order = sorted(range(len(queue)),
                       key=lambda i: (queue[i].arrival, queue[i].job_id))
        return order[:n_free]

    def fast_queue(self, n_gpus: int) -> KeyedFastQueue:
        return KeyedFastQueue(lambda j: (j.arrival, j.job_id))


class Sjf:
    """Shortest job first (requires known durations)."""

    def select(self, queue: Sequence[Job], n_free: int,
               running: Sequence[Job]) -> List[int]:
        order = sorted(range(len(queue)),
                       key=lambda i: (queue[i].service, queue[i].job_id))
        return order[:n_free]

    def fast_queue(self, n_gpus: int) -> KeyedFastQueue:
        return KeyedFastQueue(lambda j: (j.service, j.job_id))


class SjfWithQuota:
    """SJF with a reserved GPU share for long jobs.

    ``long_quota`` is the fraction of the cluster long jobs are
    guaranteed: whenever fewer than ``quota * n_gpus`` long jobs are
    running and a long job is queued, the oldest long job is started
    ahead of the SJF order.
    """

    def __init__(self, n_gpus: int, long_quota: float = 0.25):
        if not (0.0 <= long_quota <= 1.0):
            raise ValueError("long_quota in [0, 1]")
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        self.n_gpus = n_gpus
        self.long_quota = long_quota

    def select(self, queue: Sequence[Job], n_free: int,
               running: Sequence[Job]) -> List[int]:
        picks: List[int] = []
        reserved = int(self.long_quota * self.n_gpus)
        long_running = sum(1 for j in running if j.is_long)
        long_queued = sorted(
            (i for i in range(len(queue)) if queue[i].is_long),
            key=lambda i: (queue[i].arrival, queue[i].job_id),
        )
        # honor the quota first
        while (
            long_running + len([i for i in picks if queue[i].is_long])
            < reserved
            and long_queued
            and len(picks) < n_free
        ):
            picks.append(long_queued.pop(0))
        # fill the rest by SJF
        rest = sorted(
            (i for i in range(len(queue)) if i not in picks),
            key=lambda i: (queue[i].service, queue[i].job_id),
        )
        picks.extend(rest[: n_free - len(picks)])
        return picks

    def fast_queue(self, n_gpus: int) -> QuotaFastQueue:
        # the quota is defined against the policy's own cluster size,
        # exactly as ``select`` computes it
        return QuotaFastQueue(self.n_gpus, self.long_quota)
