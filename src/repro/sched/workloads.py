"""Topology-optimization job workloads.

"A variable number of expensive GPU jobs are often necessary for
topology optimization under different loading conditions" (§4.7): job
service demands are heavy-tailed (lognormal), with a minority of
long-running design evaluations.  Two submission patterns match the
paper's study: everything at once (batch) and a Poisson stream whose
rate may or may not be throttled below cluster capacity.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sched.simulator import Job
from repro.util.rng import make_rng


def _services(rng: np.random.Generator, n: int, mean_service: float,
              sigma: float, long_fraction: float):
    mu = np.log(mean_service) - sigma * sigma / 2.0
    services = rng.lognormal(mu, sigma, n)
    # the long tail: a fraction of jobs are big design evaluations
    is_long = rng.random(n) < long_fraction
    services = np.where(is_long, services * 6.0, services)
    return services, is_long


def batch_workload(
    n_jobs: int = 500,
    mean_service: float = 10.0,
    sigma: float = 0.8,
    long_fraction: float = 0.1,
    seed: int = 0,
) -> List[Job]:
    """All jobs submitted at t=0 (the design-sweep pattern)."""
    if n_jobs < 1 or mean_service <= 0 or sigma <= 0:
        raise ValueError("bad workload parameters")
    rng = make_rng(seed)
    services, is_long = _services(rng, n_jobs, mean_service, sigma,
                                  long_fraction)
    return [
        Job(job_id=k, arrival=0.0, service=float(s), is_long=bool(l))
        for k, (s, l) in enumerate(zip(services, is_long))
    ]


def poisson_workload(
    n_jobs: int = 500,
    arrival_rate: float = 1.0,
    mean_service: float = 10.0,
    sigma: float = 0.8,
    long_fraction: float = 0.1,
    seed: int = 0,
) -> List[Job]:
    """Poisson arrivals at *arrival_rate* jobs per time unit.

    Offered load on an n-GPU cluster is
    ``arrival_rate * mean_service / n``; the paper's throttling
    recommendation is to keep it below 1.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if n_jobs < 1 or mean_service <= 0 or sigma <= 0:
        raise ValueError("bad workload parameters")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    arrivals = np.cumsum(gaps)
    services, is_long = _services(rng, n_jobs, mean_service, sigma,
                                  long_fraction)
    return [
        Job(job_id=k, arrival=float(a), service=float(s), is_long=bool(l))
        for k, (a, s, l) in enumerate(zip(arrivals, services, is_long))
    ]


def offered_load(jobs: List[Job], n_gpus: int) -> float:
    """Aggregate demand / capacity over the submission window."""
    if not jobs:
        return 0.0
    total_service = sum(j.service for j in jobs)
    window = max(max(j.arrival for j in jobs), 1e-12)
    return total_service / (n_gpus * window)
