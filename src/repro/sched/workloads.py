"""Topology-optimization job workloads.

"A variable number of expensive GPU jobs are often necessary for
topology optimization under different loading conditions" (§4.7): job
service demands are heavy-tailed (lognormal), with a minority of
long-running design evaluations.  Two submission patterns match the
paper's study: everything at once (batch) and a Poisson stream whose
rate may or may not be throttled below cluster capacity.  The traffic
layer (:mod:`repro.traffic`) composes richer arrival processes (MMPP,
diurnal) over these same service draws via :func:`draw_services` and
:func:`jobs_from_arrivals`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.sched.simulator import Job
from repro.util.rng import make_rng


def draw_services(rng: np.random.Generator, n: int, mean_service: float,
                  sigma: float, long_fraction: float):
    """Heavy-tailed service demands with realized mean ``mean_service``.

    A lognormal body with a 6x long tail on a ``long_fraction``
    minority of jobs (the big design evaluations).  The body is drawn
    with mean ``mean_service / (1 + 5 * long_fraction)`` so that after
    the tail scaling the *realized* mean is ``mean_service`` — the
    pre-fix version calibrated the lognormal to ``mean_service`` and
    then scaled the tail, inflating the realized mean to
    ``(1 + 5 * long_fraction) * mean_service`` and silently breaking
    the offered-load formula every caller quotes
    (``arrival_rate * mean_service / n_gpus``).

    Returns ``(services, is_long)`` arrays of length *n*.
    """
    if not (0.0 <= long_fraction <= 1.0):
        raise ValueError("long_fraction in [0, 1]")
    base_mean = mean_service / (1.0 + 5.0 * long_fraction)
    mu = np.log(base_mean) - sigma * sigma / 2.0
    services = rng.lognormal(mu, sigma, n)
    # the long tail: a fraction of jobs are big design evaluations
    is_long = rng.random(n) < long_fraction
    services = np.where(is_long, services * 6.0, services)
    return services, is_long


# backward-compatible private name (pre-traffic call sites)
_services = draw_services


def jobs_from_arrivals(
    arrivals: Sequence[float],
    services: Sequence[float],
    is_long: Optional[Sequence[bool]] = None,
    priorities: Optional[Sequence[int]] = None,
    deadlines: Optional[Sequence[Optional[float]]] = None,
    job_id_base: int = 0,
    tenant: Optional[str] = None,
    tenants: Optional[Sequence[Optional[str]]] = None,
) -> List[Job]:
    """Zip parallel per-job streams into :class:`Job` records.

    The ingestion point for open-loop traffic: an arrival process
    (:mod:`repro.traffic.arrivals`) supplies *arrivals*, a user
    population supplies *services* (and optionally priorities and
    deadlines), and the result feeds
    :class:`~repro.sched.simulator.SimulatorSession` directly.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must align")
    n = arrivals.size
    longs = (
        np.zeros(n, dtype=bool) if is_long is None
        else np.asarray(is_long, dtype=bool)
    )
    prios = (
        np.zeros(n, dtype=int) if priorities is None
        else np.asarray(priorities, dtype=int)
    )
    dls: Sequence[Optional[float]] = (
        [None] * n if deadlines is None else deadlines
    )
    if tenant is not None and tenants is not None:
        raise ValueError("pass tenant= or tenants=, not both")
    tens: Sequence[Optional[str]] = (
        [tenant] * n if tenants is None else tenants
    )
    if longs.size != n or prios.size != n or len(dls) != n \
            or len(tens) != n:
        raise ValueError("per-job streams must align with arrivals")
    return [
        Job(
            job_id=job_id_base + k,
            arrival=float(arrivals[k]),
            service=float(services[k]),
            is_long=bool(longs[k]),
            priority=int(prios[k]),
            deadline=None if dls[k] is None else float(dls[k]),
            tenant=tens[k],
        )
        for k in range(n)
    ]


def batch_workload(
    n_jobs: int = 500,
    mean_service: float = 10.0,
    sigma: float = 0.8,
    long_fraction: float = 0.1,
    seed: int = 0,
) -> List[Job]:
    """All jobs submitted at t=0 (the design-sweep pattern)."""
    if n_jobs < 1 or mean_service <= 0 or sigma <= 0:
        raise ValueError("bad workload parameters")
    rng = make_rng(seed)
    services, is_long = draw_services(rng, n_jobs, mean_service, sigma,
                                      long_fraction)
    return [
        Job(job_id=k, arrival=0.0, service=float(s), is_long=bool(l))
        for k, (s, l) in enumerate(zip(services, is_long))
    ]


def poisson_workload(
    n_jobs: int = 500,
    arrival_rate: float = 1.0,
    mean_service: float = 10.0,
    sigma: float = 0.8,
    long_fraction: float = 0.1,
    seed: int = 0,
) -> List[Job]:
    """Poisson arrivals at *arrival_rate* jobs per time unit.

    Offered load on an n-GPU cluster is
    ``arrival_rate * mean_service / n`` (the service draws are
    renormalized so their realized mean IS ``mean_service``, long tail
    included); the paper's throttling recommendation is to keep it
    below 1.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if n_jobs < 1 or mean_service <= 0 or sigma <= 0:
        raise ValueError("bad workload parameters")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    arrivals = np.cumsum(gaps)
    services, is_long = draw_services(rng, n_jobs, mean_service, sigma,
                                      long_fraction)
    return [
        Job(job_id=k, arrival=float(a), service=float(s), is_long=bool(l))
        for k, (a, s, l) in enumerate(zip(arrivals, services, is_long))
    ]


def offered_load(jobs: Iterable[Job], n_gpus: int) -> float:
    """Aggregate demand / capacity over the submission window.

    The window is makespan-aware: the arrival span plus one mean
    service — the shortest interval in which the demand could possibly
    be served.  The pre-fix version divided by
    ``max(max(arrival), 1e-12)``, so a batch workload (every arrival
    0.0) collapsed the window to 1e-12 and reported a load ~1e13x off;
    now a batch of ``n_jobs`` jobs reports ``n_jobs / n_gpus`` — the
    number of service slots of work per GPU, the natural batch analog
    of the streaming ``rate * service / n_gpus``.
    """
    jobs = list(jobs)
    if not jobs:
        return 0.0
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    total_service = sum(j.service for j in jobs)
    arrivals = [j.arrival for j in jobs]
    mean_service = total_service / len(jobs)
    window = (max(arrivals) - min(arrivals)) + mean_service
    return total_service / (n_gpus * window)
