"""Fast-path/reference validation mode.

PR 2 introduced fast paths with published equivalence contracts
against their slow trusted twins (bit-identical scheduler results,
neighbor pair-set equality, allclose forces and trace pricing,
residual-quality multicolor Gauss-Seidel, byte-identical JIT
bytecode).  This module turns those contracts from test-suite facts
into a runtime switch: set ``REPRO_OBS_VALIDATE=1`` and every
instrumented fast path *also* runs its reference twin on the live
inputs, compares per its contract, records the outcome as a metric,
and raises :class:`DivergenceError` in strict mode.

Modes (from the ``REPRO_OBS_VALIDATE`` environment variable):

- unset / ``0`` / ``off`` — validation disabled (production default;
  the fast paths pay one env lookup per coarse-grained call).
- ``record`` / ``warn`` — run both paths, count divergences under
  ``obs.validate.<domain>.divergence``, emit a ``RuntimeWarning``,
  return the fast result anyway.
- ``1`` / ``strict`` / anything else — as above, but divergence
  raises :class:`DivergenceError`.
"""

from __future__ import annotations

import os
import warnings
from typing import Any

import numpy as np

from repro.obs.metrics import counter

#: Environment variable selecting the validation mode.
VALIDATE_ENV = "REPRO_OBS_VALIDATE"

_OFF_VALUES = ("", "0", "off", "false", "no", "none")
_RECORD_VALUES = ("record", "warn")


class DivergenceError(AssertionError):
    """A fast path disagreed with its reference twin."""


#: memo of the last (raw env value, parsed mode) pair — the env var is
#: still *read* on every call (tests flip it freely), only the string
#: normalization is skipped when the value hasn't changed, keeping the
#: per-call cost of a disabled check to one env lookup + one compare.
_parsed: tuple = ("", "off")


def validation_mode() -> str:
    """Current mode: ``"off"``, ``"record"``, or ``"strict"``.

    Read from the environment on every call so tests (and long-lived
    processes) can flip validation without re-importing anything; the
    callers are all coarse-grained (once per solver run / neighbor
    build / scheduler run), never per-event.
    """
    global _parsed
    value = os.environ.get(VALIDATE_ENV, "")
    cached = _parsed
    if value == cached[0]:
        return cached[1]
    raw = value.strip().lower()
    if raw in _OFF_VALUES:
        mode = "off"
    elif raw in _RECORD_VALUES:
        mode = "record"
    else:
        mode = "strict"
    _parsed = (value, mode)
    return mode


def validation_enabled() -> bool:
    return validation_mode() != "off"


def check(domain: str, ok: bool, detail: str = "") -> bool:
    """Record one contract check for *domain*; handle divergence.

    Counts ``obs.validate.<domain>.checks`` always and
    ``obs.validate.<domain>.divergence`` on failure; raises in strict
    mode, warns in record mode.  Returns *ok* (record mode lets the
    caller continue with the fast result).
    """
    counter(f"obs.validate.{domain}.checks").add()
    if ok:
        return True
    counter(f"obs.validate.{domain}.divergence").add()
    msg = f"fast path diverged from reference in {domain}"
    if detail:
        msg = f"{msg}: {detail}"
    if validation_mode() == "strict":
        raise DivergenceError(msg)
    warnings.warn(msg, RuntimeWarning, stacklevel=2)
    return False


def check_equal(domain: str, fast: Any, ref: Any, detail: str = "") -> bool:
    """Bit-exact contract (scheduler results, JIT bytecode, pair sets)."""
    ok = bool(fast == ref)
    extra = detail or f"{_shorten(fast)} != {_shorten(ref)}"
    return check(domain, ok, extra if not ok else "")


def check_allclose(
    domain: str,
    fast: Any,
    ref: Any,
    rtol: float = 1e-9,
    atol: float = 0.0,
    detail: str = "",
) -> bool:
    """Floating-point contract (forces, energies, modeled times)."""
    fast_a = np.asarray(fast)
    ref_a = np.asarray(ref)
    ok = fast_a.shape == ref_a.shape and bool(
        np.allclose(fast_a, ref_a, rtol=rtol, atol=atol)
    )
    if ok:
        return check(domain, True)
    if fast_a.shape != ref_a.shape:
        extra = f"shape {fast_a.shape} vs {ref_a.shape}"
    else:
        diff = np.max(np.abs(fast_a - ref_a)) if fast_a.size else 0.0
        extra = f"max |fast-ref| = {diff:.3e}"
    if detail:
        extra = f"{detail} ({extra})"
    return check(domain, False, extra)


def _shorten(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
