"""Process-wide counter/gauge registry with dotted namespaces.

Names follow ``subsystem.component.metric`` (``sched.events_processed``,
``solvers.amg.vcycles``, ``md.neighbor.rebuilds``,
``jit.cache.disk_hit``, ...).  The registry is always on; the cost
contract is that *hot loops batch*: a subsystem counts locally inside
its loop and lands one :meth:`Counter.add` at the loop boundary, so
the per-event overhead of observability is a plain integer increment
the code already performs.

:func:`snapshot` returns plain ``{name: value}`` dicts, which is what
``benchmarks/harness.py`` embeds into ``BENCH_<n>.json`` so the perf
gate can diff semantic counters (a fusion pass that stops firing shows
up as a counter diff, not just a wall-time blip).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """Monotonic counter; ``add`` is thread-safe."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def add(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Last-written value (queue depth, pair count, cache size)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class MetricsRegistry:
    """Create-on-first-use registry of named counters and gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)  # lock-free fast path (GIL-safe read)
        if c is not None:
            return c
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is not None:
            return g
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """``{"counters": {name: value}, "gauges": {name: value}}``."""
        with self._lock:
            return {
                "counters": {
                    k: v.value for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    k: v.value for k, v in sorted(self._gauges.items())
                },
            }

    def snapshot_prefix(self, prefix: str) -> Dict[str, Number]:
        """Counter values under *prefix* only (``{name: value}``).

        The cheap variant the delta-takers want (traffic fingerprints,
        the incident flight recorder): no gauge walk, no allocation for
        the thousands of counters outside the namespace of interest.
        """
        with self._lock:
            return {
                k: v.value for k, v in sorted(self._counters.items())
                if k.startswith(prefix)
            }

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero (and forget) metrics; *prefix* limits the purge."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
            else:
                for d in (self._counters, self._gauges):
                    for k in [k for k in d if k.startswith(prefix)]:
                        del d[k]


#: Process-wide registry used by all instrumented subsystems.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def snapshot() -> Dict[str, Dict[str, Number]]:
    return REGISTRY.snapshot()


def snapshot_prefix(prefix: str) -> Dict[str, Number]:
    return REGISTRY.snapshot_prefix(prefix)


def reset_metrics(prefix: Optional[str] = None) -> None:
    REGISTRY.reset(prefix)
