"""Fig.-8-style breakdown reports from traces, spans, and counters.

:func:`report` renders, through :class:`repro.util.tables.Table`:

1. a per-kernel time breakdown — roofline-modeled time per kernel
   name (from a :class:`~repro.core.kernels.KernelTrace` priced on a
   :class:`~repro.core.roofline.RooflineModel`) side by side with
   measured wall time per span name, the measured-vs-modeled
   comparison the paper makes throughout §5;
2. a span summary (count / total / mean per span name); and
3. the current counter snapshot.

Measured times come from a :class:`~repro.obs.trace.RingBufferSink`
(or any iterable of span records, or a plain ``{name: seconds}``
mapping); matching is by name, so instrument kernels with spans named
after the kernels they wrap to get both columns populated.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.util.tables import Table, format_seconds


def span_summary(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Tuple[int, float]]:
    """Aggregate span records to ``{name: (count, total_seconds)}``."""
    out: Dict[str, Tuple[int, float]] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        name = rec["name"]
        count, total = out.get(name, (0, 0.0))
        out[name] = (count + 1, total + float(rec.get("dur", 0.0)))
    return out


def _measured_map(measured: Any) -> Dict[str, float]:
    """Normalize *measured* into ``{name: seconds}``."""
    if measured is None:
        return {}
    if isinstance(measured, Mapping):
        return {str(k): float(v) for k, v in measured.items()}
    # RingBufferSink or any iterable of span records
    return {
        name: total for name, (_, total) in span_summary(measured).items()
    }


def kernel_breakdown(
    trace,
    model,
    side: str = "gpu",
    gpus: int = 1,
    cores: Optional[int] = None,
    measured: Any = None,
) -> Table:
    """Per-kernel modeled (and optionally measured) time table."""
    if side not in ("gpu", "cpu"):
        raise ValueError("side must be 'gpu' or 'cpu'")
    if not hasattr(trace, "compacted"):
        raise TypeError(
            "trace must be a KernelTrace (e.g. ctx.trace), got "
            f"{type(trace).__name__}; span records / sinks go in "
            "measured=..."
        )
    if side == "gpu":
        rep = model.run_on_gpu(trace, gpus=gpus, compact=True)
    else:
        rep = model.run_on_cpu(trace, cores=cores, compact=True)
    walls = _measured_map(measured)
    table = Table(
        ["kernel", "modeled", "measured", "meas/model", "share"],
        title=(
            f"per-kernel breakdown on {rep.machine} ({rep.side}), "
            f"modeled total {format_seconds(rep.total)}"
        ),
    )
    total = rep.kernel_time or 1.0
    for name, t in sorted(
        rep.per_kernel.items(), key=lambda kv: -kv[1]
    ):
        wall = walls.get(name)
        ratio = "-" if not wall or t == 0 else f"{wall / t:.3g}x"
        table.add_row(
            name,
            format_seconds(t),
            format_seconds(wall) if wall is not None else "-",
            ratio,
            f"{100.0 * t / total:.1f}%",
        )
    return table


def counters_table(registry: Optional[MetricsRegistry] = None) -> Table:
    snap = (registry or REGISTRY).snapshot()
    table = Table(["metric", "kind", "value"], title="counters")
    for name, value in snap["counters"].items():
        table.add_row(name, "counter", value)
    for name, value in snap["gauges"].items():
        table.add_row(name, "gauge", value)
    return table


def spans_table(records: Iterable[Mapping[str, Any]]) -> Table:
    table = Table(["span", "count", "total", "mean"], title="spans")
    summary = span_summary(records)
    for name, (count, total) in sorted(
        summary.items(), key=lambda kv: -kv[1][1]
    ):
        table.add_row(
            name, count, format_seconds(total),
            format_seconds(total / count),
        )
    return table


def report(
    trace=None,
    model=None,
    side: str = "gpu",
    gpus: int = 1,
    cores: Optional[int] = None,
    measured: Any = None,
    registry: Optional[MetricsRegistry] = None,
    include_counters: bool = True,
) -> str:
    """Render the full observability report as plain text.

    ``trace``+``model`` add the Fig.-8-style per-kernel breakdown;
    ``measured`` (a ring-buffer sink, span-record iterable, or
    ``{name: seconds}``) fills its measured-wall column and, when
    given as records, adds a span summary; counters render from the
    global registry unless another is passed.
    """
    sections = []
    if trace is not None and model is not None:
        sections.append(str(kernel_breakdown(
            trace, model, side=side, gpus=gpus, cores=cores,
            measured=measured,
        )))
    if measured is not None and not isinstance(measured, Mapping):
        records = list(measured)
        if records:
            sections.append(str(spans_table(records)))
    if include_counters:
        sections.append(str(counters_table(registry)))
    return "\n\n".join(sections)
