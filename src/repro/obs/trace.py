"""Nested timed spans with pluggable structured-record sinks.

A :class:`Span` measures one timed region; spans nest through a
contextvar (so nesting is correct across threads and async tasks
without any caller bookkeeping).  Completed spans are emitted as flat
dict records to every sink attached to the :class:`Tracer`.

Overhead contract: tracing is **disabled by default**, and a disabled
tracer returns one shared no-op span object from :meth:`Tracer.span`
before any record formatting, attribute capture, or clock read — an
instrumented hot path costs one attribute load and one truth test.

Sinks receive plain dicts; :class:`FileSink` and :class:`StderrSink`
serialize them as JSON Lines, :class:`RingBufferSink` keeps the last N
in memory for report rendering and tests.

Timestamp contract: each tracer anchors a wall-clock epoch to the
monotonic ``perf_counter`` clock once, at construction.  A span record's
``ts`` is the span's *start* expressed as ``epoch + monotonic offset``
(so ``ts + dur`` is the end, and timelines stay monotonic even when the
system wall clock steps mid-run); ``dur`` is pure ``perf_counter``.
:class:`FileSink` appends each record with a single ``O_APPEND``
``os.write`` under a lock, so concurrent threads and processes never
interleave partial JSONL lines.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Deque, Dict, Iterator, List, Optional

#: Environment variable enabling tracing at import: ``mem`` (ring
#: buffer), ``stderr``, or a file path for JSONL output.
TRACE_ENV = "REPRO_OBS_TRACE"

_current_span_id: ContextVar[Optional[int]] = ContextVar(
    "repro_obs_current_span", default=None
)


class RingBufferSink:
    """Keep the most recent *capacity* records in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.records: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records)


class FileSink:
    """Append records to *path* as JSON Lines.

    Concurrency-safe by construction: each record is serialized to one
    buffer and appended with a single ``os.write`` on an ``O_APPEND``
    file descriptor under a lock.  ``O_APPEND`` makes each write an
    atomic seek-to-end+write at the kernel level, so sinks in separate
    *processes* pointed at the same path interleave only whole lines;
    the lock serializes threads sharing this sink object.
    """

    def __init__(self, path: str):
        self.path = path
        self._fd: Optional[int] = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        line = (json.dumps(record, default=str) + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                raise ValueError("emit on a closed FileSink")
            os.write(self._fd, line)

    def close(self) -> None:
        with self._lock:
            fd, self._fd = self._fd, None
            if fd is not None:
                os.close(fd)


class StderrSink:
    """Write records to stderr as JSON Lines."""

    def emit(self, record: Dict[str, Any]) -> None:
        sys.stderr.write(json.dumps(record, default=str) + "\n")


class Span:
    """One timed region; use as a context manager.

    Attributes set at creation (or via :meth:`set`) land in the
    emitted record's ``attrs`` field and must be JSON-serializable.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "_t0", "_token")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs or {}
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self._t0 = 0.0
        self._token = None

    def set(self, **attrs: Any) -> "Span":
        """Attach extra attributes to the span record."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.parent_id = _current_span_id.get()
        self._token = _current_span_id.set(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        if self._token is not None:
            _current_span_id.reset(self._token)
            self._token = None
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": threading.get_ident(),
            # span *start* on the tracer's monotonic-anchored epoch:
            # ts + dur is the end, and a wall-clock step mid-run cannot
            # reorder the timeline
            "ts": self.tracer.epoch_wall + (self._t0 - self.tracer.epoch_perf),
            "dur": dur,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self.tracer._emit(record)
        return False


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Hand out spans and fan completed records out to sinks."""

    def __init__(self, sinks: Optional[List[Any]] = None,
                 enabled: bool = False):
        self._sinks: List[Any] = list(sinks or [])
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.enabled = enabled and bool(self._sinks)
        # wall-clock epoch anchored to the monotonic clock once; span
        # ``ts`` values are monotonic offsets from this pair
        self.epoch_wall = time.time()
        self.epoch_perf = time.perf_counter()

    def span(self, name: str, **attrs: Any):
        """A new span, or the shared no-op span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs or None)

    def enable(self, sink: Optional[Any] = None) -> Any:
        """Turn tracing on; returns the (possibly new ring) sink."""
        with self._lock:
            if sink is None:
                sink = next(
                    (s for s in self._sinks
                     if isinstance(s, RingBufferSink)),
                    None,
                ) or RingBufferSink()
            if sink not in self._sinks:
                self._sinks.append(sink)
            self.enabled = True
        return sink

    def disable(self) -> None:
        self.enabled = False

    def remove_sink(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            if not self._sinks:
                self.enabled = False

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            for sink in self._sinks:
                sink.emit(record)


#: Process-wide tracer used by all instrumented subsystems.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def span(name: str, **attrs: Any):
    """``TRACER.span(...)`` — the call instrumented code sites use."""
    if not TRACER.enabled:  # short-circuit before touching attrs
        return NULL_SPAN
    return TRACER.span(name, **attrs)


def configure_from_env() -> None:
    """Enable the global tracer per ``REPRO_OBS_TRACE`` (if set).

    ``mem`` attaches a ring buffer, ``stderr`` a stderr JSONL sink,
    anything else is treated as an output file path.
    """
    import os

    target = os.environ.get(TRACE_ENV, "").strip()
    if not target:
        return
    if target.lower() == "mem":
        TRACER.enable(RingBufferSink())
    elif target.lower() == "stderr":
        TRACER.enable(StderrSink())
    else:
        TRACER.enable(FileSink(target))
