"""Observability layer: spans, counters, validate-mode, reports.

The paper's whole methodology is instrumentation-driven: per-kernel
timing breakdowns (Fig. 8), measured-vs-modeled comparisons (§5), and
counter-based loop optimization in ParaDyn (§4.8).  This package gives
the reproduction the same machinery, with zero third-party
dependencies beyond NumPy:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer`: nested timed
  spans, thread-safe, contextvar-scoped, emitting structured JSONL
  records through pluggable sinks (in-memory ring buffer, file,
  stderr).  Disabled by default; a disabled tracer hands out a shared
  no-op span before any formatting work happens.
- :mod:`repro.obs.metrics` — process-wide :class:`Counter`/:class:`Gauge`
  registry with dotted per-subsystem namespacing
  (``sched.events_processed``, ``md.neighbor.rebuilds``,
  ``jit.cache.disk_hit``, ...).  Hot loops batch their increments at
  subsystem boundaries, so always-on metrics cost nothing measurable.
- :mod:`repro.obs.validate` — the fast-path/reference contract
  enforcer.  With ``REPRO_OBS_VALIDATE=1`` every instrumented fast
  path also runs its slow trusted twin, compares results per the
  published contract (bit-exact for the scheduler and JIT bytecode,
  pair-set equality for neighbor lists, allclose for forces and trace
  pricing, residual-quality for multicolor Gauss-Seidel), records any
  divergence as a counter, and raises :class:`DivergenceError` in
  strict mode.
- :mod:`repro.obs.report` — :func:`report`: a Fig.-8-style per-kernel
  breakdown table (measured wall vs roofline-modeled time) plus the
  counter snapshot, rendered through :mod:`repro.util.tables`.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    reset_metrics,
    snapshot,
    snapshot_prefix,
)
from repro.obs.report import report, span_summary
from repro.obs.trace import (
    FileSink,
    RingBufferSink,
    Span,
    StderrSink,
    TRACER,
    Tracer,
    configure_from_env,
    get_tracer,
    span,
)
from repro.obs.validate import (
    DivergenceError,
    VALIDATE_ENV,
    check,
    check_allclose,
    check_equal,
    validation_enabled,
    validation_mode,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "reset_metrics",
    "snapshot",
    "snapshot_prefix",
    "report",
    "span_summary",
    "FileSink",
    "RingBufferSink",
    "Span",
    "StderrSink",
    "TRACER",
    "Tracer",
    "configure_from_env",
    "get_tracer",
    "span",
    "DivergenceError",
    "VALIDATE_ENV",
    "check",
    "check_allclose",
    "check_equal",
    "validation_enabled",
    "validation_mode",
]

configure_from_env()
