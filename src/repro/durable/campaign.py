"""Kill-anywhere campaign driver over a :class:`DurableStore`.

:class:`ResumableCampaign` drives any checkpointable stepper (the
same ``step()`` / ``progress`` / ``checkpoint_state()`` /
``restore_state()`` protocol :class:`~repro.resilience.ResilientDriver`
uses — :class:`~repro.workflow.mummi.MummiCampaign`, the stepwise
solvers, :class:`~repro.sched.simulator.SimulatorSession`) with a
durability guarantee the in-memory driver cannot give: the process
can be **SIGKILLed at any instant** and a restarted process resumes
bit-exactly.

The commit protocol per step::

    step()                       # mutate live state
    journal(progress, payload)   # fsync-on-commit — THE commit point
    [snapshot every `cadence`]   # compaction, atomic

A kill before the journal append loses only the uncommitted step;
recovery restores the previous boundary and re-runs it, and because
every stepper snapshots *all* state feeding the computation
(including RNG streams and their spawn counters), the re-run is
bit-identical to the one the kill destroyed.  A kill mid-append is a
torn tail the WAL truncates.  A kill between snapshot and rotation
leaves stale journal records that replay as no-ops.

Each committed payload carries the stepper's full
``checkpoint_state()`` plus the observability counters under
``counter_prefixes`` (campaign/scheduler/guard accounting), so a
resumed process reports the same final metrics an uninterrupted run
would — counters rewind to the boundary together with the state.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.durable.store import DurableStore

#: counter namespaces that ride along with every committed payload
DEFAULT_COUNTER_PREFIXES = ("workflow.", "sched.", "guard.")


def _capture_counters(prefixes: Tuple[str, ...]) -> Dict[str, Any]:
    return {
        name: value
        for name, value in _metrics.snapshot()["counters"].items()
        if name.startswith(prefixes)
    }


def _restore_counters(values: Dict[str, Any],
                      prefixes: Tuple[str, ...]) -> None:
    """Rewind tracked counters to exactly the committed values.

    Counters under a tracked prefix that exist in the registry but
    not in the committed payload were created after the boundary —
    they rewind to zero, not to a stale live value.
    """
    live = _metrics.snapshot()["counters"]
    for name in live:
        if name.startswith(prefixes) and name not in values:
            _metrics.counter(name).reset()
    for name, value in values.items():
        c = _metrics.counter(name)
        with c._lock:
            c.value = value


class ResumableCampaign:
    """Drive *stepper* under WAL-journaled durable checkpoints."""

    def __init__(
        self,
        stepper: Any,
        store: DurableStore,
        cadence: int = 10,
        journal_every: int = 1,
        counter_prefixes: Iterable[str] = DEFAULT_COUNTER_PREFIXES,
    ):
        if cadence < 1:
            raise ValueError("cadence must be >= 1")
        if journal_every < 1:
            raise ValueError("journal_every must be >= 1")
        self.stepper = stepper
        self.store = store
        self.cadence = cadence
        self.journal_every = journal_every
        self.counter_prefixes = tuple(counter_prefixes)
        self.steps_committed = 0
        self.recovered_step: Optional[int] = None
        self._last_journaled = -1

    # -- recovery -------------------------------------------------------

    def recover(self) -> Optional[int]:
        """Restore the stepper (and counters) from the store.

        Returns the recovered step, or ``None`` when the store is
        fresh (first boot) and the stepper keeps its constructed
        state.
        """
        rec = self.store.recover()
        if rec is None:
            return None
        step, payload = rec
        self.stepper.restore_state(payload["state"])
        _restore_counters(payload.get("counters", {}),
                          self.counter_prefixes)
        self.recovered_step = step
        self._last_journaled = step
        return step

    # -- the drive loop -------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        return {
            "state": self.stepper.checkpoint_state(),
            "counters": _capture_counters(self.counter_prefixes),
        }

    def run(self, n_steps: Optional[int] = None,
            pace: float = 0.0) -> int:
        """Run until ``progress >= n_steps`` (or the stepper is done).

        ``pace`` sleeps that many seconds after each commit — the
        chaos harness uses it to stretch a campaign so seeded kill
        points land mid-flight.  Returns the final progress.
        """
        stepper = self.stepper
        has_done = hasattr(stepper, "done")
        if n_steps is None and not has_done:
            raise ValueError(
                "stepper has no natural termination; pass n_steps"
            )
        # a snapshot at entry makes recovery possible from step one,
        # and on resume compacts the replayed journal
        self.store.save_snapshot(stepper.progress, self._payload())
        self._last_journaled = stepper.progress
        while True:
            if has_done and stepper.done:
                break
            if n_steps is not None and stepper.progress >= n_steps:
                break
            stepper.step()
            progress = stepper.progress
            payload = None
            if progress % self.journal_every == 0:
                payload = self._payload()
                self.store.journal(progress, payload)
                self._last_journaled = progress
                self.steps_committed += 1
            if progress % self.cadence == 0 and progress > self.store.store.step:
                self.store.save_snapshot(
                    progress, payload if payload is not None
                    else self._payload(),
                )
            if pace:
                time.sleep(pace)
        # commit the final state even off the journal_every grid, so
        # recovery lands on the true end of the run
        if stepper.progress > self._last_journaled:
            self.store.journal(stepper.progress, self._payload())
            self._last_journaled = stepper.progress
            self.steps_committed += 1
        return stepper.progress
