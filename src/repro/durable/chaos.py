"""Kill/restart chaos harness for the durable crash-restart core.

Forks a MuMMI campaign child that journals every cycle into a
:class:`~repro.durable.DurableStore`, delivers ``SIGKILL`` at
randomized (seeded) points in its life, restarts it, and — after the
configured number of kills — lets the final incarnation run to
completion.  The recovered terminal payload must be **bit-exact**
against an uninterrupted in-process reference run: same final
campaign state (macro field, RNG streams and spawn counters, GPU-hour
/ wall-time / shed accounting, breaker state) and the same
observability counters.

Because the journal commit is the only durability boundary, a kill
can land anywhere — mid-cycle, mid-fsync, mid-snapshot-rotation —
and recovery must still converge.  The harness is wired into
``tests/test_durable.py`` and the ``durable-chaos`` CI job; it is
also runnable directly::

    python -m repro.durable.chaos --cycles 8 --kills 3 --seed 0
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.durable.campaign import ResumableCampaign
from repro.durable.store import DurableStore


def state_mismatches(a: Any, b: Any, path: str = "state") -> List[str]:
    """Paths at which two nested state payloads differ (bit-level)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and np.array_equal(a, b)):
            return [path]
        return []
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        for k in sorted(set(a) | set(b), key=str):
            if k not in a or k not in b:
                out.append(f"{path}.{k}")
            else:
                out.extend(state_mismatches(a[k], b[k], f"{path}.{k}"))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{path}(len {len(a)} vs {len(b)})"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(state_mismatches(x, y, f"{path}[{i}]"))
        return out
    if a != b:
        return [path]
    return []


@dataclass
class ChaosReport:
    """What one kill/restart chaos run did and whether it converged."""

    kills: int = 0
    restarts: int = 0
    cycles: int = 0
    recovered_step: int = -1
    bit_exact: bool = False
    mismatches: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "BIT-EXACT" if self.bit_exact else "DIVERGED"
        lines = [
            f"chaos: {self.kills} kills / {self.restarts} starts, "
            f"{self.cycles} cycles, recovered step {self.recovered_step}: "
            f"{verdict}"
        ]
        lines += [f"  mismatch at {m}" for m in self.mismatches[:20]]
        return "\n".join(lines)


def _default_campaign_kwargs() -> Dict[str, Any]:
    # explicit serial backend: the chaos child is SIGKILLed, and an
    # explicit backend (argument beats REPRO_PAR) keeps the kill from
    # orphaning a process pool's grandchildren under the CI matrix
    return {"n_gpus": 8, "jobs_per_cycle": 8, "backend": "serial"}


def _make_campaign(seed: int, campaign_kwargs: Optional[Dict[str, Any]]):
    from repro.workflow.mummi import MummiCampaign

    kwargs = dict(_default_campaign_kwargs())
    if campaign_kwargs:
        kwargs.update(campaign_kwargs)
    return MummiCampaign(seed=seed, **kwargs)


def _chaos_child(root, n_cycles, cadence, pace, seed,
                 campaign_kwargs) -> None:
    """One child incarnation: recover (if anything is durable), run."""
    from repro.obs import metrics as _metrics

    # fork inherits the parent's counter registry; the tracked
    # namespaces must start from zero (fresh boot) or from the journal
    # (recovery rewinds them), never from inherited parent activity
    for prefix in ("workflow.", "sched.", "guard."):
        _metrics.REGISTRY.reset(prefix)
    campaign = _make_campaign(seed, campaign_kwargs)
    with DurableStore(root) as store:
        driver = ResumableCampaign(campaign, store, cadence=cadence)
        driver.recover()
        driver.run(n_cycles, pace=pace)


def run_chaos(
    n_cycles: int = 8,
    kills: int = 3,
    seed: int = 0,
    kill_seed: int = 123,
    pace: float = 0.02,
    cadence: int = 3,
    store_root=None,
    campaign_kwargs: Optional[Dict[str, Any]] = None,
    max_restarts: int = 50,
) -> ChaosReport:
    """Run the kill/restart experiment; see the module docstring.

    The kill schedule is seeded (``kill_seed``): delays are drawn
    uniformly over the child's expected lifetime, so across the
    configured kills the SIGKILLs sample early, middle, and late
    journal boundaries.  ``max_restarts`` bounds the loop against a
    pathological store that never makes progress.
    """
    import multiprocessing as mp

    from repro.obs import metrics as _metrics

    report = ChaosReport()

    # --- uninterrupted reference, in-process ---------------------------
    prefixes = ("workflow.", "sched.", "guard.")
    _metrics.REGISTRY.reset("workflow.")
    _metrics.REGISTRY.reset("sched.")
    _metrics.REGISTRY.reset("guard.")
    ref = _make_campaign(seed, campaign_kwargs)
    while ref.progress < n_cycles:
        ref.step()
    ref_state = ref.checkpoint_state()
    ref_counters = {
        name: value
        for name, value in _metrics.snapshot()["counters"].items()
        if name.startswith(prefixes)
    }

    # --- the chaos loop ------------------------------------------------
    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        store_root = tmp.name
    try:
        ctx = mp.get_context("fork")
        rng = np.random.default_rng(kill_seed)
        remaining = n_cycles
        while report.restarts < max_restarts:
            child = ctx.Process(
                target=_chaos_child,
                args=(store_root, n_cycles, cadence, pace, seed,
                      campaign_kwargs),
            )
            child.start()
            report.restarts += 1
            if report.kills < kills:
                # scale the kill point to the child's *remaining* work
                # (peeked from the store between incarnations) so every
                # requested kill lands before the campaign completes
                delay = float(
                    rng.uniform(pace * 0.5, pace * max(1.0, 0.8 * remaining))
                )
                child.join(delay)
                if child.is_alive():
                    os.kill(child.pid, signal.SIGKILL)
                    child.join()
                    report.kills += 1
                    with DurableStore(store_root) as peek:
                        rec = peek.recover()
                    remaining = n_cycles - (rec[0] if rec else 0)
                    continue
            else:
                child.join()
            if child.exitcode != 0:
                raise RuntimeError(
                    f"chaos child exited with {child.exitcode} "
                    "(only SIGKILLs delivered by the harness are expected)"
                )
            break
        else:
            raise RuntimeError(
                f"no convergence within {max_restarts} restarts"
            )

        # --- recover the terminal payload and compare ------------------
        with DurableStore(store_root) as store:
            rec = store.recover()
        if rec is None:
            report.mismatches.append("store recovered nothing")
            return report
        step, payload = rec
        report.recovered_step = step
        report.cycles = step
        report.mismatches = state_mismatches(payload["state"], ref_state)
        report.mismatches += state_mismatches(
            payload.get("counters", {}), ref_counters, path="counters"
        )
        report.bit_exact = step == n_cycles and not report.mismatches
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=8)
    ap.add_argument("--kills", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--kill-seed", type=int, default=123)
    ap.add_argument("--pace", type=float, default=0.02)
    ap.add_argument("--cadence", type=int, default=3)
    args = ap.parse_args(argv)
    report = run_chaos(
        n_cycles=args.cycles, kills=args.kills, seed=args.seed,
        kill_seed=args.kill_seed, pace=args.pace, cadence=args.cadence,
    )
    print(report)
    return 0 if report.bit_exact else 1


if __name__ == "__main__":
    sys.exit(main())
