"""Snapshot + incremental-journal persistent state store.

:class:`DurableStore` layers the :class:`~repro.durable.wal.WriteAheadLog`
under the existing in-memory
:class:`~repro.resilience.checkpoint.CheckpointStore`:

- a **snapshot** is the full state at some step, written crash-safely
  via :func:`~repro.resilience.checkpoint.atomic_write_bytes` (tmp
  file + ``os.replace`` + fsync) and followed by an atomic journal
  rotation — the records it subsumes become garbage;
- between snapshots, every committed step appends a **journal
  record** ``{"step": k, "payload": ...}`` (pickle inside a
  CRC-framed WAL frame), durable before the next step runs;
- **recovery** loads the snapshot (if any), then replays the journal
  in order, applying only records that advance the step — so
  duplicate records (a resubmitted step journaled twice) and stale
  records (a crash between snapshot commit and journal rotation) are
  both idempotent no-ops.

Payloads are opaque to the store; the campaign layer puts a full
``checkpoint_state()`` dict (plus its observability counters) in each
record, which is what makes replay equal restoration.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.obs import metrics as _metrics
from repro.resilience.checkpoint import CheckpointStore, atomic_write_bytes
from repro.durable.wal import WriteAheadLog

SNAPSHOT_NAME = "snapshot.ckpt"
JOURNAL_NAME = "journal.wal"


class DurableStore:
    """WAL-journaled checkpoint store rooted at a directory.

    ``sync`` picks the durability class: ``True`` (default) fsyncs
    every commit, surviving kernel crashes and power loss; ``False``
    flushes without fsync — writes still survive *process* death
    (SIGKILL, the chaos harness's threat model: the page cache
    belongs to the OS, not the process) at a fraction of the commit
    cost.
    """

    def __init__(self, root: Union[str, Path], sync: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.root / SNAPSHOT_NAME
        self.sync = sync
        #: in-memory latest (the layer the resilient driver already
        #: knows); its save/load accounting keeps working unchanged
        self.store = CheckpointStore()
        self.wal = WriteAheadLog(self.root / JOURNAL_NAME, sync=sync)
        self.snapshots_written = 0
        self.records_journaled = 0
        self.records_replayed = 0
        self.records_skipped = 0

    # -- write path -----------------------------------------------------

    def save_snapshot(self, step: int, payload: Any) -> None:
        """Persist a full snapshot and retire the journal it subsumes.

        Commit order matters: the snapshot must be durable *before*
        the journal rotates.  A crash in between leaves the new
        snapshot plus the old journal, whose records replay as
        idempotent no-ops (their steps do not advance past the
        snapshot).
        """
        blob = pickle.dumps(
            {"step": step, "state": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.store.save(step, payload, copy=False, nbytes=len(blob))
        atomic_write_bytes(self.snapshot_path, blob, sync=self.sync)
        self.wal.rotate()
        self.snapshots_written += 1
        _metrics.counter("durable.snapshots").add()

    def journal(self, step: int, payload: Any) -> None:
        """Append one committed step to the journal (fsync-on-commit)."""
        self.wal.append(pickle.dumps(
            {"step": step, "payload": payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        ))
        self.records_journaled += 1
        _metrics.counter("durable.journal_records").add()

    # -- recovery -------------------------------------------------------

    def recover(self) -> Optional[Tuple[int, Any]]:
        """``(step, payload)`` of the newest durable state, or ``None``.

        Loads the snapshot when one exists, then replays the journal:
        records are applied in append order, and only when they
        strictly advance the step — replay is idempotent under
        duplicates and stale pre-snapshot records.  An empty or
        missing journal (first boot, crash before the first commit)
        recovers to the snapshot alone; no snapshot and no records
        means a fresh store.
        """
        step = -1
        payload: Any = None
        if self.snapshot_path.exists():
            step, payload = self.store.load_from(self.snapshot_path)
        for raw in self.wal.replay():
            rec = pickle.loads(raw)
            if rec["step"] > step:
                step = rec["step"]
                payload = rec["payload"]
                self.records_replayed += 1
            else:
                self.records_skipped += 1
        if step < 0:
            return None
        self.store.save(step, payload, copy=False)
        _metrics.counter("durable.recoveries").add()
        return step, payload

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
