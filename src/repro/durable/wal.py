"""Write-ahead journal with CRC-framed records.

The durability primitive under :class:`repro.durable.DurableStore`:
an append-only log whose records survive SIGKILL at any byte
boundary.  Frame format, after an 8-byte magic header::

    [u32 length (big-endian)] [u32 crc32(payload)] [payload bytes]

Durability contract:

- **fsync-on-commit** — :meth:`WriteAheadLog.append` returns only
  after the frame is flushed and ``fsync``\\ ed (unless ``sync=False``
  for tests/benchmarks that want the framing without the disk wait),
  so a record that was appended is a record that survives a crash.
- **torn-tail truncation on open** — a crash mid-append leaves a
  partial frame (short header, short payload, or CRC mismatch) at the
  tail.  Opening the log scans it, keeps the longest valid prefix,
  and truncates the torn bytes; the lost record was never committed,
  so dropping it is correct.
- **atomic rename rotation** — :meth:`rotate` atomically replaces the
  journal with a fresh empty one (``os.replace`` of a synced temp
  file), used after a snapshot makes the old records obsolete.  A
  crash before the rename keeps the old journal; a crash after keeps
  the new one; no in-between state exists.

Payloads are opaque bytes; callers (``DurableStore``) bring their own
serialization.  Everything after a bad frame is discarded — with
length-prefix framing there is no reliable way to resynchronize past
a corrupt length field, and a committed record is by construction
followed only by later commits, so mid-file corruption means the
medium (not a crash) damaged the log.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Union

#: file magic: identifies a repro WAL and its framing version
MAGIC = b"RPROWAL1"

_HEADER = struct.Struct(">II")  # length, crc32


def _fsync_dir(path: Path) -> None:
    """fsync the directory entry so a rename/create survives a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_records(path: Union[str, Path]) -> Iterator[bytes]:
    """Yield the committed payloads of the WAL at *path*, oldest first.

    Read-only: never opens the file for writing, never truncates a
    torn tail — a torn frame simply ends the iteration.  This is the
    scan every *reader* of a WAL-framed file must use: opening a
    :class:`WriteAheadLog` just to read would take an append handle
    and truncate torn bytes on disk, which corrupts a file another
    process is still appending to (live capture) and mutates traces a
    loader is only supposed to inspect.
    """
    with open(Path(path), "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            return
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length:
                return
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return
            yield payload


class WriteAheadLog:
    """Append-only CRC-framed journal (see module docstring)."""

    def __init__(self, path: Union[str, Path], sync: bool = True,
                 flush_every: int = 1):
        self.path = Path(path)
        self.sync = sync
        #: flush the OS buffer every N appends (``sync=True`` always
        #: flushes + fsyncs).  >1 trades the commit point for append
        #: throughput: a crash loses at most the last N-1 records, and
        #: the surviving prefix is still a clean committed prefix —
        #: the trade live-capture mode makes to stay off the hot path.
        self.flush_every = max(1, int(flush_every))
        #: bytes cut from a torn tail during the open scan (0 = clean)
        self.truncated_bytes = 0
        #: valid records found on disk at open
        self.records_on_open = 0
        self.appends = 0
        self.bytes_appended = 0
        self._fh = None
        self._open_and_recover()

    # -- open / recovery ------------------------------------------------

    def _open_and_recover(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self._write_fresh(self.path)
        end, count, total = self._scan(self.path)
        if end < total:
            self.truncated_bytes = total - end
            with open(self.path, "r+b") as fh:
                fh.truncate(end)
                fh.flush()
                if self.sync:
                    os.fsync(fh.fileno())
        self.records_on_open = count
        self._fh = open(self.path, "ab")

    def _write_fresh(self, path: Path) -> None:
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        if self.sync:
            _fsync_dir(path.parent)

    @staticmethod
    def _scan(path: Path) -> tuple:
        """``(last_valid_offset, n_records, file_size)`` for *path*.

        A file without the magic header (including an empty file from
        a crash between create and header write) is valid-to-offset 0,
        which the caller truncates and the next append reheaders.
        """
        size = path.stat().st_size
        with open(path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                return 0, 0, size
            end = len(MAGIC)
            count = 0
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                length, crc = _HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length:
                    break
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    break
                end = fh.tell()
                count += 1
            return end, count, size

    # -- append path ----------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Commit one record; durable on return when ``sync=True``."""
        if self._fh is None:
            raise RuntimeError("journal is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("WAL payloads are bytes")
        payload = bytes(payload)
        if self._fh.tell() == 0:
            # recovery truncated a headerless file down to nothing
            self._fh.write(MAGIC)
        frame = _HEADER.pack(len(payload),
                             zlib.crc32(payload) & 0xFFFFFFFF) + payload
        self._fh.write(frame)
        self.appends += 1
        if self.sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        elif self.appends % self.flush_every == 0:
            self._fh.flush()
        self.bytes_appended += len(frame)

    def flush(self) -> None:
        """Push buffered frames to the OS (fsync too when ``sync``)."""
        if self._fh is not None:
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())

    # -- read path ------------------------------------------------------

    def replay(self) -> Iterator[bytes]:
        """Yield every committed payload, oldest first.

        Reads the file fresh (committed frames only: the open scan
        already cut any torn tail, and appends are flushed before
        return), so replay composes with a live append handle.
        """
        if self._fh is not None:
            self._fh.flush()
        yield from read_records(self.path)

    def records(self) -> List[bytes]:
        return list(self.replay())

    # -- rotation / lifecycle -------------------------------------------

    def rotate(self) -> None:
        """Atomically replace the journal with a fresh empty one."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        tmp = self.path.with_name(self.path.name + ".rotate")
        self._write_fresh(tmp)
        os.replace(tmp, self.path)
        if self.sync:
            _fsync_dir(self.path.parent)
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
