"""Durable crash-restart core (``repro.durable``).

The paper's Sierra campaigns (MuMMI, ddcMD ensembles, solver sweeps)
ran for days and had to survive node loss without losing work; the
reproduction's :class:`~repro.resilience.CheckpointStore` was
in-memory only, so a SIGKILL mid-campaign lost all scheduler, tenant,
and RNG state.  This package makes the kill survivable:

- :class:`~repro.durable.wal.WriteAheadLog` — CRC32-framed append-only
  journal: fsync-on-commit, torn-tail truncation on open, atomic
  rename rotation.
- :class:`~repro.durable.store.DurableStore` — snapshot + incremental
  journal layered under the existing ``CheckpointStore``; recovery is
  load-snapshot-then-replay-journal, idempotent under duplicates.
- :class:`~repro.durable.campaign.ResumableCampaign` — drives any
  checkpointable stepper so the process can be SIGKILLed at any
  instant and a restart resumes bit-exactly (same final metrics and
  RNG draws as an uninterrupted run).
- :mod:`repro.durable.chaos` — the kill/restart harness that proves
  it, wired into tests and the ``durable-chaos`` CI job.

The worker-pool half of the story (heartbeat liveness, replacement,
poison quarantine, journal resubmission) lives in
:class:`repro.par.Supervisor`, which journals fan-out completions
into the same WAL format.
"""

from repro.durable.campaign import (
    DEFAULT_COUNTER_PREFIXES,
    ResumableCampaign,
)
from repro.durable.chaos import ChaosReport, run_chaos, state_mismatches
from repro.durable.store import DurableStore
from repro.durable.wal import WriteAheadLog, read_records

__all__ = [
    "ChaosReport",
    "DEFAULT_COUNTER_PREFIXES",
    "DurableStore",
    "ResumableCampaign",
    "WriteAheadLog",
    "read_records",
    "run_chaos",
    "state_mismatches",
]
