"""Opt kernel proxy: GPU topology optimization (§4.7).

The Opt code is "relatively small with a few hot kernels.  By using a
matrix-free solver implemented in CUDA and texture cache memory, the
team achieved good performance on the EA system" — and designed a
drone that flew (Fig 5).  On Volta, "Opt did not benefit from texture
caching ... due to improvements in Volta GPU caching", making the
early CUDA choice suboptimal in hindsight.

- :mod:`repro.topopt.fe2d` — bilinear-quad plane-stress finite
  elements: the classic 8x8 element stiffness and a *matrix-free*
  global operator (gather -> element product -> scatter), verified
  against sparse assembly.
- :mod:`repro.topopt.simp` — SIMP topology optimization: density
  filtering, penalized stiffness, optimality-criteria updates, and
  compliance/volume tracking, with the drone-arm-like cantilever load
  case.
- :mod:`repro.topopt.texture` — the texture-cache ablation: modeled
  matrix-free-kernel times on P100 (texture path needed) vs V100
  (unified L1 makes it moot) — the executable form of the paper's
  "RAJA would have been sufficient" hindsight.
"""

from repro.topopt.fe2d import (
    Cantilever2D,
    element_stiffness,
    matrix_free_apply,
)
from repro.topopt.simp import SimpOptimizer, SimpResult
from repro.topopt.texture import texture_ablation

__all__ = [
    "element_stiffness",
    "Cantilever2D",
    "matrix_free_apply",
    "SimpOptimizer",
    "SimpResult",
    "texture_ablation",
]
