"""SIMP topology optimization with optimality-criteria updates.

The standard pipeline (Sigmund's 88-line method): penalized density
stiffness ``E(rho) = E_min + rho^p (E0 - E_min)``, compliance objective
``c = f^T u``, sensitivity filtering against checkerboards, and the
optimality-criteria multiplier found by bisection under the volume
constraint.  The displacement solve is the matrix-free CG from
:mod:`repro.topopt.fe2d` — the paper's hot kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.topopt.fe2d import (
    Cantilever2D,
    element_stiffness,
    matrix_free_apply,
    solve_displacement,
)


@dataclass
class SimpResult:
    density: np.ndarray          # (nelx, nely)
    compliance_history: List[float]
    volume_fraction: float
    cg_iterations: int

    @property
    def compliance(self) -> float:
        return self.compliance_history[-1]


class SimpOptimizer:
    """SIMP driver over a :class:`Cantilever2D` domain."""

    def __init__(
        self,
        domain: Cantilever2D,
        volume_fraction: float = 0.4,
        penalty: float = 3.0,
        filter_radius: float = 1.5,
        e_min: float = 1e-9,
        move: float = 0.2,
    ):
        if not (0 < volume_fraction < 1):
            raise ValueError("volume_fraction in (0, 1)")
        if penalty < 1:
            raise ValueError("penalty must be >= 1")
        if filter_radius <= 0:
            raise ValueError("filter_radius must be positive")
        self.domain = domain
        self.volfrac = volume_fraction
        self.penalty = penalty
        self.e_min = e_min
        self.move = move
        self.ke = element_stiffness()
        self._filter = self._build_filter(filter_radius)
        self.total_cg_iterations = 0

    def _build_filter(self, radius: float):
        """Distance-weighted sensitivity filter (sparse weights)."""
        nelx, nely = self.domain.nelx, self.domain.nely
        r = int(np.ceil(radius)) - 1
        offsets = [
            (dx, dy, radius - np.hypot(dx, dy))
            for dx in range(-r, r + 1)
            for dy in range(-r, r + 1)
            if radius - np.hypot(dx, dy) > 0
        ]
        return offsets

    def _apply_filter(self, x: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Sigmund's sensitivity filter: weighted average of x*s."""
        nelx, nely = self.domain.nelx, self.domain.nely
        num = np.zeros((nelx, nely))
        den = np.zeros((nelx, nely))
        xs = x * s
        for dx, dy, w in self._filter:
            src_x = slice(max(0, -dx), nelx - max(0, dx))
            src_y = slice(max(0, -dy), nely - max(0, dy))
            dst_x = slice(max(0, dx), nelx - max(0, -dx))
            dst_y = slice(max(0, dy), nely - max(0, -dy))
            num[dst_x, dst_y] += w * xs[src_x, src_y]
            den[dst_x, dst_y] += w * x[src_x, src_y]
        return num / np.maximum(den, 1e-12)

    # ------------------------------------------------------------------

    def _stiffness_scale(self, x: np.ndarray) -> np.ndarray:
        return (
            self.e_min + x.ravel(order="C") ** self.penalty * (1 - self.e_min)
        )

    def compliance_and_sensitivity(self, x: np.ndarray
                                   ) -> Tuple[float, np.ndarray, int]:
        scale = self._stiffness_scale(x)
        u, iters = solve_displacement(self.domain, self.ke, scale)
        ue = u[self.domain.edof]
        ce = np.einsum("ei,ij,ej->e", ue, self.ke, ue)
        compliance = float((scale * ce).sum())
        dc = (
            -self.penalty * x.ravel() ** (self.penalty - 1)
            * (1 - self.e_min) * ce
        ).reshape(x.shape)
        return compliance, dc, iters

    def _oc_update(self, x: np.ndarray, dc: np.ndarray) -> np.ndarray:
        """Optimality-criteria update with bisection on the multiplier."""
        l1, l2 = 1e-9, 1e9
        move = self.move
        dc_safe = np.minimum(dc, -1e-12)  # compliance sens. is negative
        while (l2 - l1) / (l1 + l2) > 1e-4:
            lmid = 0.5 * (l1 + l2)
            scale = np.sqrt(-dc_safe / lmid)
            x_new = np.clip(
                x * scale, np.maximum(x - move, 0.0),
                np.minimum(x + move, 1.0),
            )
            if x_new.mean() > self.volfrac:
                l1 = lmid
            else:
                l2 = lmid
        return x_new

    def optimize(self, n_iters: int = 30,
                 callback: Optional[callable] = None) -> SimpResult:
        if n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        x = np.full((self.domain.nelx, self.domain.nely), self.volfrac)
        history: List[float] = []
        iters_total = 0
        for _ in range(n_iters):
            c, dc, iters = self.compliance_and_sensitivity(x)
            iters_total += iters
            history.append(c)
            dc = self._apply_filter(x, dc)
            x = self._oc_update(x, dc)
            if callback is not None:
                callback(x, c)
        self.total_cg_iterations = iters_total
        return SimpResult(
            density=x,
            compliance_history=history,
            volume_fraction=float(x.mean()),
            cg_iterations=iters_total,
        )
