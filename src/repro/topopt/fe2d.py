"""2D plane-stress finite elements for topology optimization.

Bilinear quads on a regular ``nelx x nely`` grid with two displacement
DOFs per node — the classic "88-line topopt" discretization.  The
global operator is available both matrix-free (the GPU-style path the
Opt team implemented: gather element displacements, multiply by the
density-scaled 8x8 element stiffness, scatter-add) and as an
assembled sparse matrix (verification reference).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def element_stiffness(young: float = 1.0, poisson: float = 0.3
                      ) -> np.ndarray:
    """8x8 bilinear-quad plane-stress element stiffness (unit square)."""
    if young <= 0 or not (-1.0 < poisson < 0.5):
        raise ValueError("bad material parameters")
    e, nu = young, poisson
    k = np.array([
        1 / 2 - nu / 6, 1 / 8 + nu / 8, -1 / 4 - nu / 12, -1 / 8 + 3 * nu / 8,
        -1 / 4 + nu / 12, -1 / 8 - nu / 8, nu / 6, 1 / 8 - 3 * nu / 8,
    ])
    ke = e / (1 - nu * nu) * np.array([
        [k[0], k[1], k[2], k[3], k[4], k[5], k[6], k[7]],
        [k[1], k[0], k[7], k[6], k[5], k[4], k[3], k[2]],
        [k[2], k[7], k[0], k[5], k[6], k[3], k[4], k[1]],
        [k[3], k[6], k[5], k[0], k[7], k[2], k[1], k[4]],
        [k[4], k[5], k[6], k[7], k[0], k[1], k[2], k[3]],
        [k[5], k[4], k[3], k[2], k[1], k[0], k[7], k[6]],
        [k[6], k[3], k[4], k[1], k[2], k[7], k[0], k[5]],
        [k[7], k[2], k[1], k[4], k[3], k[6], k[5], k[0]],
    ])
    return ke


class Cantilever2D:
    """Regular-grid cantilever domain: clamp at x=0, tip load.

    Node numbering is column-major as in the 88-line code: node
    ``(ix, iy)`` has index ``ix*(nely+1) + iy``; DOFs are
    ``2*node`` (x) and ``2*node+1`` (y).
    """

    def __init__(self, nelx: int, nely: int, load: str = "tip"):
        if nelx < 1 or nely < 1:
            raise ValueError("need at least one element each way")
        if load not in ("tip", "mid"):
            raise ValueError("load must be 'tip' or 'mid'")
        self.nelx, self.nely = nelx, nely
        self.n_nodes = (nelx + 1) * (nely + 1)
        self.n_dofs = 2 * self.n_nodes
        self.edof = self._element_dofs()
        # boundary: clamp every DOF on the x=0 edge
        fixed_nodes = np.arange(nely + 1)
        self.fixed = np.concatenate([2 * fixed_nodes, 2 * fixed_nodes + 1])
        self.free = np.setdiff1d(np.arange(self.n_dofs), self.fixed)
        # load: downward unit force at the tip (bottom-right corner) or
        # at the right-edge midpoint
        self.force = np.zeros(self.n_dofs)
        if load == "tip":
            node = nelx * (nely + 1) + nely
        else:
            node = nelx * (nely + 1) + nely // 2
        self.force[2 * node + 1] = -1.0

    def _element_dofs(self) -> np.ndarray:
        """(n_elements, 8) global DOF indices per element."""
        nelx, nely = self.nelx, self.nely
        ex, ey = np.meshgrid(np.arange(nelx), np.arange(nely),
                             indexing="ij")
        n1 = (ex * (nely + 1) + ey).ravel()        # upper-left node
        n2 = n1 + (nely + 1)                        # upper-right
        edof = np.stack([
            2 * n1 + 2, 2 * n1 + 3,   # lower-left  (y+1)
            2 * n2 + 2, 2 * n2 + 3,   # lower-right
            2 * n2, 2 * n2 + 1,       # upper-right
            2 * n1, 2 * n1 + 1,       # upper-left
        ], axis=1)
        return edof

    @property
    def n_elements(self) -> int:
        return self.nelx * self.nely


def matrix_free_apply(
    domain: Cantilever2D,
    ke: np.ndarray,
    stiffness_scale: np.ndarray,
    u: np.ndarray,
) -> np.ndarray:
    """y = K(rho) u without assembling K.

    ``stiffness_scale`` is the per-element penalized stiffness
    (E_min + rho^p (E0 - E_min)); fixed DOFs are enforced by identity
    rows (u and y agree there).
    """
    if u.shape[0] != domain.n_dofs:
        raise ValueError("displacement vector has wrong length")
    if stiffness_scale.shape[0] != domain.n_elements:
        raise ValueError("one stiffness scale per element required")
    ue = u[domain.edof]                          # (nel, 8)
    fe = (ue @ ke) * stiffness_scale[:, None]    # (nel, 8)
    y = np.zeros_like(u)
    np.add.at(y, domain.edof.ravel(), fe.ravel())
    # Dirichlet: identity on fixed DOFs
    y[domain.fixed] = u[domain.fixed]
    return y


def assemble_stiffness(
    domain: Cantilever2D, ke: np.ndarray, stiffness_scale: np.ndarray
) -> sp.csr_matrix:
    """Assembled sparse K(rho) with identity rows at fixed DOFs."""
    nel = domain.n_elements
    rows = np.repeat(domain.edof, 8, axis=1).ravel()
    cols = np.tile(domain.edof, (1, 8)).ravel()
    vals = (stiffness_scale[:, None, None] * ke[None]).ravel()
    k = sp.coo_matrix((vals, (rows, cols)),
                      shape=(domain.n_dofs, domain.n_dofs)).tocsr()
    # identity rows/cols for fixed DOFs
    k = k.tolil()
    for dof in domain.fixed:
        k.rows[dof] = [dof]
        k.data[dof] = [1.0]
    k = k.tocsr()
    kt = k.T.tolil()
    for dof in domain.fixed:
        kt.rows[dof] = [dof]
        kt.data[dof] = [1.0]
    return kt.T.tocsr()


def solve_displacement(
    domain: Cantilever2D,
    ke: np.ndarray,
    stiffness_scale: np.ndarray,
    tol: float = 1e-8,
    max_iter: int = 4000,
) -> Tuple[np.ndarray, int]:
    """Matrix-free Jacobi-preconditioned CG for K(rho) u = f."""
    from repro.solvers.krylov import pcg

    # diagonal of K for the preconditioner (computed matrix-free)
    diag = np.zeros(domain.n_dofs)
    np.add.at(
        diag, domain.edof.ravel(),
        (stiffness_scale[:, None] * np.diag(ke)[None, :]).ravel(),
    )
    diag[domain.fixed] = 1.0
    inv_diag = 1.0 / np.maximum(diag, 1e-12)

    f = domain.force.copy()
    f[domain.fixed] = 0.0
    u, info = pcg(
        lambda v: matrix_free_apply(domain, ke, stiffness_scale, v),
        f,
        preconditioner=lambda r: inv_diag * r,
        tol=tol,
        max_iter=max_iter,
    )
    if not info.converged:
        raise RuntimeError(
            f"displacement solve failed: reduction {info.reduction:.2e}"
        )
    return u, info.iterations
