"""The texture-cache ablation (§4.7's hindsight lesson).

The matrix-free element kernel is gather-dominated: random-access
reads of element displacements through the connectivity map.  On
Pascal (P100), such gathers run far below peak unless routed through
the texture path; Volta's unified L1 made the texture path redundant
("Opt did not benefit from texture caching on the final system due to
improvements in Volta GPU caching").

:func:`texture_ablation` prices the kernel on a machine for the two
code paths — plain loads vs texture loads — using the
``unified_fast_l1`` flag from the machine catalog.  On the EA system
the texture path is a large win (justifying CUDA early); on Sierra
the gap vanishes (so "an abstraction layer such as RAJA would have
been sufficient").
"""

from __future__ import annotations

from typing import Dict

from repro.core.kernels import KernelSpec
from repro.core.machine import Machine
from repro.core.roofline import RooflineModel

#: gather bandwidth efficiency of plain global loads on pre-Volta GPUs
PLAIN_GATHER_EFF_PRE_VOLTA = 0.22
#: ...and through the texture path (dedicated cache hierarchy)
TEXTURE_GATHER_EFF = 0.55
#: Volta's unified L1 gives plain loads texture-path performance
PLAIN_GATHER_EFF_VOLTA = 0.55


def _gather_kernel(n_elements: int, eff: float) -> KernelSpec:
    """The matrix-free element kernel: 8-DOF gather, 64-FMA product,
    8-DOF scatter per element."""
    return KernelSpec(
        name="topopt-matfree",
        flops=128.0 * n_elements,
        bytes_read=8.0 * 16 * n_elements,   # ue gather + indices
        bytes_written=8.0 * 8 * n_elements,
        compute_efficiency=0.5,
        bandwidth_efficiency=eff,
    )


def texture_ablation(machine: Machine, n_elements: int = 1_000_000
                     ) -> Dict[str, float]:
    """Modeled kernel times for plain vs texture load paths.

    Returns times plus ``texture_benefit`` (plain/texture ratio) and
    the resulting recommendation.
    """
    if machine.gpu is None:
        raise ValueError("texture ablation needs a GPU machine")
    if n_elements < 1:
        raise ValueError("n_elements must be >= 1")
    model = RooflineModel(machine)
    plain_eff = (
        PLAIN_GATHER_EFF_VOLTA
        if machine.gpu.unified_fast_l1
        else PLAIN_GATHER_EFF_PRE_VOLTA
    )
    t_plain = model.gpu_kernel_time(_gather_kernel(n_elements, plain_eff))
    t_texture = model.gpu_kernel_time(
        _gather_kernel(n_elements, TEXTURE_GATHER_EFF)
    )
    benefit = t_plain / t_texture
    return {
        "plain_time": t_plain,
        "texture_time": t_texture,
        "texture_benefit": benefit,
        # >15% benefit means portable abstractions (no texture access)
        # leave real performance on the table -> CUDA justified
        "needs_texture_path": benefit > 1.15,
    }
