"""Fault injection, retry policies, and checkpoint/restart.

The resilience layer of the reproduction: a calibrated per-machine
fault model (:mod:`repro.resilience.faults`), scheduler-level retry
policies (:mod:`repro.resilience.retry`), a generic checkpoint
protocol with an in-memory store (:mod:`repro.resilience.checkpoint`),
and a driver that runs any checkpointable stepper to completion under
injected faults (:mod:`repro.resilience.driver`).
"""

from repro.resilience.checkpoint import (
    Checkpointable,
    CheckpointStore,
    snapshot,
    state_nbytes,
)
from repro.resilience.driver import ResilienceReport, ResilientDriver
from repro.resilience.faults import FaultInjector, fault_spec_for
from repro.resilience.retry import (
    CappedRetry,
    ExponentialBackoff,
    ImmediateRetry,
)

__all__ = [
    "CappedRetry",
    "Checkpointable",
    "CheckpointStore",
    "ExponentialBackoff",
    "FaultInjector",
    "ImmediateRetry",
    "ResilienceReport",
    "ResilientDriver",
    "fault_spec_for",
    "snapshot",
    "state_nbytes",
]
