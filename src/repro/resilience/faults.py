"""Calibrated fault model and the seeded fault injector.

Two kinds of events, matching the failure taxonomy the exascale
readiness literature uses:

- **hard faults** (node or GPU death): a Poisson process whose rate
  comes from the per-machine :class:`~repro.core.machine.FaultSpec`
  catalog; the victim process/job is killed and loses all
  uncheckpointed work.
- **silent data corruption** (SDC): a rare per-step Bernoulli event
  that perturbs live state without any crash; only an algorithm-level
  check (the ABFT residual/energy tests the checkpointable steppers
  expose) can notice it.

Everything is driven by one seeded generator, so a fault schedule is
reproducible: the same seed produces the same kills at the same times,
which is what lets the recovery tests demand bit-for-bit equality
between an interrupted-and-restarted run and a fault-free one.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

import numpy as np

from repro.core.machine import FaultSpec, Machine, YEAR_SECONDS
from repro.util.rng import SeedLike, make_rng


def fault_spec_for(machine: Machine) -> FaultSpec:
    """The machine's calibrated :class:`FaultSpec`, or a heuristic.

    Machines without a catalog entry get a year-based estimate:
    hardware reliability improved roughly linearly over the study's
    decade, and GPUs fail ~2x as often as the rest of their node.
    """
    if machine.faults is not None:
        return machine.faults
    node_years = max(5.0, 2.0 * (machine.year - 2005))
    gpu_mtbf = (
        node_years / 2.0 * YEAR_SECONDS
        if machine.gpu is not None else float("inf")
    )
    sdc = 5e-5 if machine.gpu is not None else 0.0
    return FaultSpec(
        node_mtbf=node_years * YEAR_SECONDS,
        gpu_mtbf=gpu_mtbf,
        sdc_per_gpu_hour=sdc,
    )


class FaultInjector:
    """Seeded source of hard-fault and SDC events.

    Exposes both interfaces the layers above need:

    - continuous time (:meth:`next_fault_after`, :meth:`pick_victim`)
      for the event-driven :class:`~repro.sched.simulator.ClusterSimulator`;
    - per-step draws (:meth:`draw_kill`, :meth:`draw_sdc`) for the
      checkpointed solver/MD/campaign loops driven by
      :class:`~repro.resilience.driver.ResilientDriver`.

    The injector itself is checkpointable (its generator state is part
    of a campaign checkpoint) so that restarting from a checkpoint
    replays the same downstream fault schedule.
    """

    def __init__(
        self,
        mtbf: Optional[float] = None,
        kill_per_step: float = 0.0,
        sdc_per_step: float = 0.0,
        sdc_magnitude: float = 1e4,
        seed: SeedLike = 0,
    ):
        if mtbf is not None and mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if not (0.0 <= kill_per_step <= 1.0):
            raise ValueError("kill_per_step in [0, 1]")
        if not (0.0 <= sdc_per_step <= 1.0):
            raise ValueError("sdc_per_step in [0, 1]")
        self.mtbf = mtbf
        self.kill_per_step = kill_per_step
        self.sdc_per_step = sdc_per_step
        self.sdc_magnitude = sdc_magnitude
        self.rng = make_rng(seed)

    @classmethod
    def for_machine(
        cls,
        machine: Machine,
        nodes: int = 1,
        seed: SeedLike = 0,
        time_scale: float = 1.0,
        **kwargs: Any,
    ) -> "FaultInjector":
        """Injector whose hard-fault MTBF matches *nodes* nodes of
        *machine*.

        ``time_scale`` compresses real time into simulation time
        (e.g. ``1e-4`` makes a 13-hour system MTBF fire every ~4.7
        simulated seconds), which is how the tests and benchmarks
        exercise multi-day failure statistics in milliseconds.
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        spec = fault_spec_for(machine)
        mtbf = spec.system_mtbf(nodes, machine.gpus_per_node) * time_scale
        return cls(mtbf=mtbf, seed=seed, **kwargs)

    # -- continuous-time interface (scheduler) -------------------------

    def next_fault_after(self, t: float) -> float:
        """Time of the next hard fault strictly after *t*."""
        if self.mtbf is None:
            return float("inf")
        return t + float(self.rng.exponential(self.mtbf))

    def pick_victim(self, n: int) -> int:
        """Uniformly choose which of *n* running jobs the fault kills."""
        if n < 1:
            raise ValueError("no victims to pick from")
        return int(self.rng.integers(n))

    # -- per-step interface (checkpointed loops) -----------------------

    def draw_kill(self) -> bool:
        """Did a hard fault land during the step that just ran?"""
        return bool(self.rng.random() < self.kill_per_step)

    def draw_sdc(self) -> bool:
        """Did a silent corruption land before the next step?"""
        return bool(self.rng.random() < self.sdc_per_step)

    # -- checkpoint protocol -------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        return {"rng": copy.deepcopy(self.rng.bit_generator.state)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])
