"""Generic checkpoint protocol and the in-memory checkpoint store.

A *checkpointable* object exposes two methods::

    checkpoint_state() -> dict   # a deep snapshot of all live state
    restore_state(state) -> None # rewind to exactly that snapshot

The contract is strict: after ``restore_state``, re-running the same
steps must reproduce the original trajectory bit-for-bit, so the
snapshot must capture *everything* that feeds the computation —
arrays, counters, cached forces, neighbor lists, and RNG states.
The stepwise PCG/AMG solvers, :class:`~repro.md.ddcmd.DdcMD`, and
:class:`~repro.workflow.mummi.MummiCampaign` all implement it; the
property tests in ``tests/test_resilience.py`` enforce the contract.

:class:`CheckpointStore` keeps the latest snapshot (plus write
accounting) and can price the write against a machine's NVMe — the
number the checkpoint-cadence/overhead benchmark trades off against
MTBF.
"""

from __future__ import annotations

import copy
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from repro.core.machine import Machine


@runtime_checkable
class Checkpointable(Protocol):
    """Anything that can snapshot and rewind its full live state."""

    def checkpoint_state(self) -> Dict[str, Any]: ...

    def restore_state(self, state: Dict[str, Any]) -> None: ...


#: leaf types that are immutable and safe to share between snapshots
_IMMUTABLE = (int, float, complex, bool, str, bytes, type(None))


def snapshot(state: Any) -> Any:
    """Deep-copy a state dict (arrays, nested dicts, rng states).

    Hand-rolled rather than ``copy.deepcopy``: the generic machinery
    costs several PCG iterations per call, which would blow the <10%
    checkpoint-overhead budget at the default cadence.  Containers and
    arrays are copied structurally; immutable leaves are shared."""
    if isinstance(state, _IMMUTABLE):
        return state
    if isinstance(state, np.ndarray):
        return state.copy()
    if isinstance(state, dict):
        return {k: snapshot(v) for k, v in state.items()}
    if isinstance(state, list):
        return [snapshot(v) for v in state]
    if isinstance(state, tuple):
        return tuple(snapshot(v) for v in state)
    return copy.deepcopy(state)


def atomic_write_bytes(path: Union[str, Path], payload: bytes,
                       sync: bool = True) -> int:
    """Crash-safe whole-file write; returns bytes written.

    The payload lands in a same-directory temp file which is fsynced
    and then ``os.replace``\\ d over *path* (followed by a directory
    fsync so the rename itself survives a crash).  A SIGKILL at any
    point leaves either the previous file or the new one — never a
    truncated or half-written mix.  ``sync=False`` skips the fsyncs
    (the rename is still atomic, so the write survives process death,
    just not a kernel crash or power loss).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if sync:
        dirfd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
    return len(payload)


def state_nbytes(state: Any) -> int:
    """Total array payload of a snapshot, in bytes."""
    if isinstance(state, np.ndarray):
        return int(state.nbytes)
    if isinstance(state, dict):
        return sum(state_nbytes(v) for v in state.values())
    if isinstance(state, (list, tuple)):
        return sum(state_nbytes(v) for v in state)
    return 0


class CheckpointStore:
    """Holds the most recent checkpoint of one checkpointable object.

    ``save`` snapshots (deep-copies) the state so later mutation of
    the live object cannot corrupt the checkpoint; ``load`` returns a
    fresh copy for the same reason — a rollback must not alias the
    stored arrays, or the next rollback would see a half-replayed
    state.
    """

    def __init__(self) -> None:
        self._state: Optional[Dict[str, Any]] = None
        self.step: int = -1
        self.saves = 0
        self.loads = 0
        self.bytes_written = 0

    @property
    def has_checkpoint(self) -> bool:
        return self._state is not None

    @property
    def nbytes(self) -> int:
        """Size of the currently held checkpoint."""
        return state_nbytes(self._state) if self._state is not None else 0

    def save(self, step: int, state: Dict[str, Any],
             copy: bool = True, nbytes: Optional[int] = None) -> None:
        """Store *state* as the current checkpoint.

        ``copy=False`` takes ownership of *state* without the defensive
        snapshot — only safe when the caller guarantees it holds no
        aliases into live data, as ``checkpoint_state()`` does (it
        returns fresh copies).  The resilient driver uses this to
        avoid paying for every array twice.

        ``nbytes``, when given, is used for the write accounting in
        place of the recursive :func:`state_nbytes` walk — callers
        that already serialized the state (the durable store) know the
        true size and skip a walk that can cost more than the save."""
        if step < 0:
            raise ValueError("step must be >= 0")
        self._state = snapshot(state) if copy else state
        self.step = step
        self.saves += 1
        self.bytes_written += self.nbytes if nbytes is None else nbytes

    def load(self) -> Tuple[int, Dict[str, Any]]:
        if self._state is None:
            raise RuntimeError("no checkpoint saved")
        self.loads += 1
        return self.step, snapshot(self._state)

    # -- persistence (crash-safe atomic write) -------------------------

    def save_to(self, path: Union[str, Path], sync: bool = True) -> int:
        """Persist the held checkpoint to *path*; returns bytes written.

        The write is atomic (:func:`atomic_write_bytes`): a SIGKILL at
        any point leaves either the previous checkpoint file or the
        new one — never a truncated or half-written mix, which is what
        a recovery path must be able to rely on before it trusts the
        bytes.
        """
        if self._state is None:
            raise RuntimeError("no checkpoint to persist")
        payload = pickle.dumps(
            {"step": self.step, "state": self._state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return atomic_write_bytes(path, payload, sync=sync)

    def load_from(self, path: Union[str, Path]) -> Tuple[int, Dict[str, Any]]:
        """Load a persisted checkpoint into this store and return it.

        Stray ``.tmp`` leftovers from a crash mid-:meth:`save_to` are
        ignored (and cleaned up): only the atomically-renamed file is
        ever trusted.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        if tmp.exists():
            tmp.unlink()
        with open(path, "rb") as fh:
            rec = pickle.load(fh)
        self._state = rec["state"]
        self.step = rec["step"]
        return self.load()

    def modeled_write_time(self, machine: Machine) -> float:
        """Seconds one checkpoint write would take on *machine*'s
        node-local NVMe (falls back to the network injection path when
        the node has no NVMe)."""
        bw = machine.nvme_bw if machine.nvme_bw > 0 else (
            machine.network.injection_bw
        )
        return self.nbytes / bw
