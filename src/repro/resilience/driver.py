"""Checkpoint/restart driver for stepwise computations.

Runs any checkpointable stepper (stepwise PCG/AMG, :class:`DdcMD`,
:class:`MummiCampaign`) under an optional :class:`FaultInjector`:

- a checkpoint is saved every ``cadence`` completed steps;
- a hard fault kills the "process" — the driver rewinds to the last
  checkpoint and replays, counting the wasted steps;
- before each step the stepper's ABFT invariant (recurrence-vs-true
  residual for solvers, step-to-step energy jump for MD, a field
  checksum for the campaign) is checked; a violation means silent
  data corruption, and triggers the same rollback.

Because every stepper snapshots *all* of its live state (including
RNG states), a rewind-and-replay reproduces the fault-free
trajectory bit-for-bit — the property the acceptance tests assert.

The stepper protocol, beyond ``checkpoint_state``/``restore_state``:

``step()``
    advance one unit of work (iteration / MD step / campaign cycle);
``progress`` (int property)
    completed units; must rewind when state is restored;
``done`` (optional bool)
    natural termination (converged solvers);
``abft_error()`` (optional)
    cheap non-negative invariant-violation metric, ~0 on a healthy
    state;
``corrupt(rng, magnitude)`` (optional)
    flip state the way an SDC event would — used by the injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector


@dataclass
class ResilienceReport:
    """What happened during one resilient run."""

    steps_completed: int = 0
    checkpoints_saved: int = 0
    checkpoint_bytes: int = 0
    kills: int = 0
    rollbacks: int = 0
    sdc_injected: int = 0
    sdc_detected: int = 0
    #: steps recomputed because a fault destroyed them
    wasted_steps: int = 0
    #: modeled checkpoint-write seconds (0 without a machine to price on)
    checkpoint_write_time: float = 0.0

    @property
    def overhead_fraction(self) -> float:
        """Wasted work relative to useful work."""
        if self.steps_completed == 0:
            return 0.0
        return self.wasted_steps / self.steps_completed


class ResilientDriver:
    """Drive *stepper* to completion with checkpoint/restart."""

    def __init__(
        self,
        stepper: Any,
        cadence: int = 10,
        injector: Optional[FaultInjector] = None,
        store: Optional[CheckpointStore] = None,
        abft_tol: Optional[float] = None,
        machine: Optional[Any] = None,
    ):
        if cadence < 1:
            raise ValueError("cadence must be >= 1")
        self.stepper = stepper
        self.cadence = cadence
        self.injector = injector
        self.store = store if store is not None else CheckpointStore()
        self.abft_tol = abft_tol
        self.machine = machine

    def _save(self, report: ResilienceReport) -> None:
        self.store.save(self.stepper.progress,
                        self.stepper.checkpoint_state(), copy=False)
        report.checkpoints_saved += 1
        report.checkpoint_bytes += self.store.nbytes
        if self.machine is not None:
            report.checkpoint_write_time += self.store.modeled_write_time(
                self.machine
            )

    def _rollback(self, report: ResilienceReport) -> None:
        before = self.stepper.progress
        step, state = self.store.load()
        self.stepper.restore_state(state)
        report.rollbacks += 1
        report.wasted_steps += max(0, before - step)

    def run(self, max_steps: Optional[int] = None) -> ResilienceReport:
        """Run until the stepper is done (or *max_steps* completed)."""
        if max_steps is None and not hasattr(self.stepper, "done"):
            raise ValueError(
                "stepper has no natural termination; pass max_steps"
            )
        report = ResilienceReport()
        self._save(report)  # step-0 checkpoint: rollback is always possible
        # hoist the capability probes: the loop runs per solver
        # iteration / MD step, so per-step hasattr dispatch is the
        # difference between ~2% and ~10% driver overhead
        stepper = self.stepper
        injector = self.injector
        cadence = self.cadence
        store = self.store
        has_done = hasattr(stepper, "done")
        can_corrupt = injector is not None and hasattr(stepper, "corrupt")
        abft = (
            stepper.abft_error
            if self.abft_tol is not None and hasattr(stepper, "abft_error")
            else None
        )
        while True:
            if has_done and stepper.done:
                break
            if max_steps is not None and stepper.progress >= max_steps:
                break
            # silent corruption lands between steps
            if can_corrupt and injector.draw_sdc():
                stepper.corrupt(injector.rng, injector.sdc_magnitude)
                report.sdc_injected += 1
            # ABFT sanity check before trusting the state
            if abft is not None and abft() > self.abft_tol:
                report.sdc_detected += 1
                self._rollback(report)
                continue
            stepper.step()
            # a hard fault kills the process mid-flight
            if injector is not None and injector.draw_kill():
                report.kills += 1
                self._rollback(report)
                continue
            progress = stepper.progress
            if progress % cadence == 0 and progress > store.step:
                self._save(report)
        report.steps_completed = self.stepper.progress
        return report
