"""Retry policies for fault-killed jobs.

A policy answers one question: after a job's ``attempt``-th failure
(1-based), how long should the scheduler wait before re-queuing it —
or should it give up (``None``)?  The three shapes below are the ones
production resource managers actually ship: retry-now, retry a bounded
number of times, and exponential backoff (which keeps a flapping node
from monopolizing the queue with instant re-submissions).
"""

from __future__ import annotations

from typing import Optional


class ImmediateRetry:
    """Re-queue the killed job right away, forever."""

    def requeue_delay(self, attempt: int) -> Optional[float]:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return 0.0


class CappedRetry:
    """Re-queue after a fixed *delay*, at most *max_retries* times."""

    def __init__(self, max_retries: int = 3, delay: float = 0.0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.max_retries = max_retries
        self.delay = delay

    def requeue_delay(self, attempt: int) -> Optional[float]:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if attempt > self.max_retries:
            return None
        return self.delay


class ExponentialBackoff:
    """Re-queue after ``base * factor**(attempt-1)``, capped and bounded."""

    def __init__(
        self,
        base: float = 1.0,
        factor: float = 2.0,
        max_delay: float = float("inf"),
        max_retries: int = 16,
    ):
        if base < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.max_retries = max_retries

    def requeue_delay(self, attempt: int) -> Optional[float]:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if attempt > self.max_retries:
            return None
        return min(self.base * self.factor ** (attempt - 1), self.max_delay)
