"""Retry policies for fault-killed jobs.

A policy answers one question: after a job's ``attempt``-th failure
(1-based), how long should the scheduler wait before re-queuing it —
or should it give up (``None``)?  The three shapes below are the ones
production resource managers actually ship: retry-now, retry a bounded
number of times, and exponential backoff (which keeps a flapping node
from monopolizing the queue with instant re-submissions).

Hardening notes: ``attempt`` is validated strictly (``bool`` and other
non-``int`` types are rejected — a ``True`` slipping in where an
attempt count belongs is a bug worth typed feedback, not a 1-attempt
retry); :class:`ExponentialBackoff` clamps its exponent so
``factor ** (attempt - 1)`` can never raise ``OverflowError`` no
matter how many retries a pathological campaign racks up; and jitter
is available only with an *injected* RNG, so jittered schedules stay
replayable under checkpoint/restart.
"""

from __future__ import annotations

import math
import sys
from typing import Optional


def _check_attempt(attempt: int) -> None:
    """Shared validation: attempts are 1-based real integers."""
    if isinstance(attempt, bool) or not isinstance(attempt, int):
        raise TypeError(
            f"attempt must be an int, got {type(attempt).__name__}"
        )
    if attempt < 1:
        raise ValueError("attempt is 1-based")


class ImmediateRetry:
    """Re-queue the killed job right away, forever."""

    def requeue_delay(self, attempt: int) -> Optional[float]:
        _check_attempt(attempt)
        return 0.0


class CappedRetry:
    """Re-queue after a fixed *delay*, at most *max_retries* times."""

    def __init__(self, max_retries: int = 3, delay: float = 0.0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.max_retries = max_retries
        self.delay = delay

    def requeue_delay(self, attempt: int) -> Optional[float]:
        _check_attempt(attempt)
        if attempt > self.max_retries:
            return None
        return self.delay


class ExponentialBackoff:
    """Re-queue after ``base * factor**(attempt-1)``, capped and bounded.

    The delay saturates at *max_delay* (or, with an infinite
    *max_delay*, at the largest finite float) instead of letting the
    power overflow: ``2.0 ** 1100`` raises ``OverflowError`` in pure
    Python, and a retry policy must never be the thing that crashes a
    resilience layer.

    *jitter* spreads re-submissions by up to ``±jitter`` (a fraction of
    the computed delay) so killed jobs don't stampede back in lockstep;
    it requires an injected ``rng`` (a ``numpy.random.Generator`` or
    anything with ``uniform(lo, hi)``) so schedules are deterministic
    and checkpoint/restart replays bit-identically.
    """

    def __init__(
        self,
        base: float = 1.0,
        factor: float = 2.0,
        max_delay: float = float("inf"),
        max_retries: int = 16,
        jitter: float = 0.0,
        rng=None,
    ):
        if base < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0.0 and rng is None:
            raise ValueError(
                "jitter requires an injected rng (determinism: the "
                "scheduler owns no hidden randomness)"
            )
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.max_retries = max_retries
        self.jitter = jitter
        self.rng = rng
        # largest exponent for which base * factor**e stays finite;
        # beyond it the delay has long since saturated anyway
        if base > 0 and factor > 1.0:
            self._exp_cap = (
                math.log(sys.float_info.max) - math.log(base)
            ) / math.log(factor)
        else:
            self._exp_cap = float("inf")

    def requeue_delay(self, attempt: int) -> Optional[float]:
        _check_attempt(attempt)
        if attempt > self.max_retries:
            return None
        exponent = attempt - 1
        if exponent >= self._exp_cap:
            delay = (
                self.max_delay if math.isfinite(self.max_delay)
                else sys.float_info.max
            )
        else:
            delay = min(self.base * self.factor ** exponent, self.max_delay)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(
                self.rng.uniform(-1.0, 1.0)
            )
        return delay
