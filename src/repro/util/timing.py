"""Wall-clock measurement helpers.

The performance-model results in :mod:`repro.core` are analytic, but the
proxy applications are also genuinely timed (pytest-benchmark and the
example scripts).  :class:`Stopwatch` wraps the monotonic clock;
:class:`TimerRegistry` accumulates named phase timings, mirroring how
the paper breaks runs into phases (Fig 2, Fig 8).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class Stopwatch:
    """Monotonic stopwatch with lap support.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed


@dataclass
class _PhaseStats:
    total: float = 0.0
    count: int = 0

    def add(self, dt: float) -> None:
        self.total += dt
        self.count += 1


class TimerRegistry:
    """Accumulates named phase timings.

    >>> timers = TimerRegistry()
    >>> with timers.phase("solve"):
    ...     _ = sum(range(100))
    >>> timers.total("solve") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._phases: Dict[str, _PhaseStats] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._phases.setdefault(name, _PhaseStats()).add(dt)

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured (or modeled) duration."""
        self._phases.setdefault(name, _PhaseStats()).add(seconds)

    def total(self, name: str) -> float:
        return self._phases[name].total if name in self._phases else 0.0

    def count(self, name: str) -> int:
        return self._phases[name].count if name in self._phases else 0

    def names(self) -> List[str]:
        return list(self._phases)

    def as_dict(self) -> Dict[str, float]:
        return {name: stats.total for name, stats in self._phases.items()}

    def merge(self, other: "TimerRegistry") -> None:
        for name, stats in other._phases.items():
            mine = self._phases.setdefault(name, _PhaseStats())
            mine.total += stats.total
            mine.count += stats.count
