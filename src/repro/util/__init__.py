"""Shared utilities: deterministic RNG, timing, text tables, reporting.

These helpers keep the proxy applications free of boilerplate while
enforcing the reproducibility conventions used across the package:
every stochastic component takes an explicit seed, every benchmark
renders results through the same table formatter, and wall-clock
measurement goes through a single monotonic timer.
"""

from repro.util.rng import make_rng, spawn_rngs, spawn_seqs
from repro.util.tables import Table, format_seconds, format_si
from repro.util.timing import Stopwatch, TimerRegistry

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seqs",
    "Table",
    "format_seconds",
    "format_si",
    "Stopwatch",
    "TimerRegistry",
]
