"""Deterministic random-number-generation helpers.

All stochastic components in :mod:`repro` accept an integer seed (or an
already-constructed :class:`numpy.random.Generator`).  Centralizing the
construction here guarantees that two runs with the same seed produce
bitwise-identical streams, which the test suite relies on, and gives
distributed simulations a principled way to derive independent
per-worker streams (:func:`spawn_rngs`) instead of the classic
``seed + rank`` anti-pattern, whose streams can overlap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (non-deterministic), an ``int``, a
    :class:`~numpy.random.SeedSequence`, or an existing generator
    (returned unchanged so call sites can be seed-or-generator
    polymorphic).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive *n* statistically independent generators from one seed.

    Used by the distributed-training and scheduler simulators so every
    simulated worker draws from its own stream.  Independence comes from
    :meth:`numpy.random.SeedSequence.spawn`, which partitions the
    underlying entropy rather than offsetting a single stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def spawn_seqs(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """Derive *n* independent :class:`~numpy.random.SeedSequence`\\ s.

    The transport-friendly sibling of :func:`spawn_rngs`: a
    ``SeedSequence`` is a tiny picklable value, so fan-out call sites
    (``repro.par``) pre-spawn one per task in the parent and ship it to
    whichever worker runs the task — the stream is a function of the
    task, not of the backend, which is what makes process results
    bit-exact against serial.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} sequences")
    if isinstance(seed, np.random.Generator):
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return seq.spawn(n)


def permutation_with_fixed_sum(
    rng: np.random.Generator, total: float, n: int, jitter: float = 0.25
) -> np.ndarray:
    """Split *total* into *n* positive parts summing exactly to *total*.

    Handy for workload generators that must partition a fixed amount of
    work (e.g. job service demand) with bounded relative *jitter*.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if total <= 0:
        raise ValueError("total must be positive")
    weights = 1.0 + jitter * (rng.random(n) - 0.5)
    parts = weights / weights.sum() * total
    return parts
