"""Plain-text table rendering used by every benchmark harness.

The paper reports results as tables and figure series; our benchmark
scripts print the same rows through :class:`Table` so the regenerated
output is directly comparable line-by-line with the paper's tables in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format *value* with an SI prefix (``1.25e9 -> '1.25 G'``)."""
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ]
    if value == 0:
        return f"0 {unit}".strip()
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``0.00231 -> '2.31 ms'``)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.3g} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g} ms"
    if seconds < 120:
        return f"{seconds:.3g} s"
    if seconds < 7200:
        return f"{seconds / 60:.3g} min"
    return f"{seconds / 3600:.3g} h"


class Table:
    """Minimal monospace table: add rows, then ``str(table)``.

    Column widths auto-size; numeric cells are right-aligned.  This is
    deliberately dependency-free so benchmark output works in any
    terminal or log file.
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: List[List[str]] = []
        self._numeric = [True] * len(self.columns)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        rendered = []
        for i, cell in enumerate(cells):
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
                if not _looks_numeric(rendered[-1]):
                    self._numeric[i] = False
        self.rows.append(rendered)

    def __str__(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            cells = []
            for i, (cell, w) in enumerate(zip(row, widths)):
                cells.append(cell.rjust(w) if self._numeric[i] else cell.ljust(w))
            lines.append(" | ".join(cells))
        return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    try:
        float(text.replace("X", "").replace("%", ""))
        return True
    except ValueError:
        return False
