"""Mini Spark: a partitioned dataflow engine with an explicit cost model.

The Data Analytics activity (§4.4) found SparkPlug LDA's scalability
limited by "overheads in the Java Virtual Machine, Spark's
implementation of shuffle (all-to-all communication), and Spark's
aggregate (all-to-one communication)", and fixed it with a tuned JVM
(GC, lock contention, serialization) and an adaptive shuffle.

This package provides those moving parts as inspectable components:

- :mod:`repro.spark.jvm` — the JVM-stack cost model: serialization
  cost per byte, GC overhead fraction, lock-contention factor; two
  presets (``default`` and ``optimized``) whose gap is Fig 2's.
- :mod:`repro.spark.engine` — :class:`SparkEngine`: partitioned
  datasets, ``map_partitions``, hash vs adaptive ``shuffle``
  (all-to-all), flat vs tree ``aggregate`` (all-to-one).  All data
  movement is real (results verified against single-process
  references); the per-phase *cluster time* is modeled from the
  machine catalog and accumulated in a TimerRegistry.
"""

from repro.spark.jvm import JvmStack, DEFAULT_STACK, OPTIMIZED_STACK
from repro.spark.engine import SparkEngine

__all__ = ["JvmStack", "DEFAULT_STACK", "OPTIMIZED_STACK", "SparkEngine"]
