"""The mini dataflow engine: partitions, shuffle, aggregate.

Data movement is genuinely executed (Python objects move between
partition lists and results are exact), while *cluster time* for each
phase is modeled from the machine catalog + JVM stack and accumulated
in a :class:`~repro.util.timing.TimerRegistry` under the phase names
Fig 2 uses (``compute``, ``shuffle``, ``aggregate``).

Shuffle algorithms (§4.4 / refs [20, 21]):

- ``hash`` — every (source partition, destination partition) block is
  serialized and sent separately: P^2 messages per shuffle, each
  paying latency + serialization.
- ``adaptive`` — blocks destined to the same node are batched into
  per-destination buffers: P messages, bulk serialization, better
  bandwidth utilization.

Aggregate algorithms:

- ``flat`` — every partition sends its full payload to the driver,
  serialized through one link (time scales with P).
- ``tree`` — binary combining tree (time scales with log2 P).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.machine import Machine, get_machine
from repro.spark.jvm import DEFAULT_STACK, JvmStack
from repro.util.timing import TimerRegistry

Partition = List[Any]


def _payload_bytes(obj: Any) -> float:
    """Estimated serialized size of a record/payload."""
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(o) for o in obj) + 16.0 * len(obj)
    if isinstance(obj, dict):
        return sum(
            _payload_bytes(k) + _payload_bytes(v) for k, v in obj.items()
        ) + 32.0 * len(obj)
    if isinstance(obj, (bytes, str)):
        return float(len(obj)) + 40.0
    return 48.0  # boxed scalar


class SparkEngine:
    """A P-worker dataflow engine with modeled cluster timing."""

    def __init__(
        self,
        n_workers: int,
        machine: Optional[Machine] = None,
        stack: JvmStack = DEFAULT_STACK,
        timers: Optional[TimerRegistry] = None,
        #: sustained per-worker compute rate (flop/s) for modeled time
        worker_rate: float = 2e10,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if worker_rate <= 0:
            raise ValueError("worker_rate must be positive")
        self.p = n_workers
        self.machine = machine if machine is not None else get_machine("sierra")
        self.stack = stack
        self.timers = timers if timers is not None else TimerRegistry()
        self.worker_rate = worker_rate

    # ------------------------------------------------------------------

    def parallelize(self, records: Sequence[Any]) -> List[Partition]:
        """Round-robin records into P partitions."""
        parts: List[Partition] = [[] for _ in range(self.p)]
        for k, rec in enumerate(records):
            parts[k % self.p].append(rec)
        return parts

    def map_partitions(
        self,
        partitions: List[Partition],
        fn: Callable[[Partition], Partition],
        flops_per_record: float = 0.0,
        name: str = "compute",
    ) -> List[Partition]:
        """Apply *fn* per partition; charge modeled parallel compute."""
        out = [fn(part) for part in partitions]
        max_records = max((len(p) for p in partitions), default=0)
        raw = max_records * flops_per_record / self.worker_rate
        t = self.stack.compute_time(raw)
        t += self.stack.dispatch_time(len(partitions)) / self.p
        self.timers.add(name, t)
        return out

    # ------------------------------------------------------------------

    def shuffle(
        self,
        partitions: List[Partition],
        key_fn: Callable[[Any], int],
        algorithm: str = "hash",
    ) -> List[Partition]:
        """All-to-all regroup: record goes to partition key_fn(r) % P."""
        if algorithm not in ("hash", "adaptive"):
            raise ValueError("algorithm must be 'hash' or 'adaptive'")
        out: List[Partition] = [[] for _ in range(self.p)]
        blocks: Dict[Tuple[int, int], float] = {}
        for src, part in enumerate(partitions):
            for rec in part:
                dst = key_fn(rec) % self.p
                out[dst].append(rec)
                key = (src, dst)
                blocks[key] = blocks.get(key, 0.0) + _payload_bytes(rec)
        self.timers.add("shuffle", self._shuffle_time(blocks, algorithm))
        return out

    def _shuffle_time(
        self, blocks: Dict[Tuple[int, int], float], algorithm: str
    ) -> float:
        net = self.machine.network
        total_bytes = sum(blocks.values())
        if algorithm == "hash":
            # P^2 small messages: every block pays latency and is
            # serialized on its own; link utilization is poor.
            n_messages = len(blocks)
            t_lat = n_messages * net.latency * self.stack.lock_contention
            t_ser = self.stack.serialization_time(total_bytes)
            t_net = total_bytes / (0.5 * net.injection_bw * self.p)
            return t_lat + t_ser + t_net
        # adaptive: one batched buffer per destination
        n_messages = self.p
        t_lat = n_messages * net.latency
        t_ser = self.stack.serialization_time(total_bytes) * 0.5
        t_net = total_bytes / (0.8 * net.injection_bw * self.p)
        return t_lat + t_ser + t_net

    # ------------------------------------------------------------------

    def aggregate(
        self,
        partitions: List[Partition],
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        zero: Any,
        algorithm: str = "flat",
        payload_bytes: Optional[float] = None,
    ) -> Any:
        """All-to-one reduction of every record into one value."""
        if algorithm not in ("flat", "tree"):
            raise ValueError("algorithm must be 'flat' or 'tree'")
        partials = []
        for part in partitions:
            acc = zero
            for rec in part:
                acc = seq_fn(acc, rec)
            partials.append(acc)
        result = partials[0]
        for p in partials[1:]:
            result = comb_fn(result, p)
        per_partial = (
            payload_bytes
            if payload_bytes is not None
            else max((_payload_bytes(p) for p in partials), default=0.0)
        )
        self.timers.add(
            "aggregate", self._aggregate_time(per_partial, algorithm)
        )
        return result

    def _aggregate_time(self, per_partial: float, algorithm: str) -> float:
        net = self.machine.network
        per_msg = net.latency + per_partial / net.injection_bw
        per_msg += self.stack.serialization_time(per_partial)
        if algorithm == "flat":
            # driver ingests P payloads serially
            return self.p * per_msg * self.stack.lock_contention
        rounds = max(1, math.ceil(math.log2(self.p)))
        return rounds * per_msg

    def broadcast_time(self, nbytes: float) -> float:
        """Model broadcasting *nbytes* to all workers (binomial tree)."""
        net = self.machine.network
        rounds = max(1, math.ceil(math.log2(self.p)))
        return rounds * (
            net.latency + nbytes / net.injection_bw
            + self.stack.serialization_time(nbytes)
        )
