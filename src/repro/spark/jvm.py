"""JVM-stack cost model.

The paper's JVM-level optimizations: "more efficient garbage
collection and lock contention schemes, as well as reduced
serialization/deserialization overheads improved performance" (§4.4).
Each knob is a first-class number here so the Fig 2 reproduction can
attribute its improvement:

- ``ser_seconds_per_byte`` — serialization + deserialization cost per
  byte crossing a partition boundary (default Java serialization vs
  OpenJ9-tuned/kryo-style).
- ``gc_overhead`` — fraction of compute time lost to collection pauses
  (allocation-churn driven).
- ``lock_contention`` — multiplier on task-dispatch critical sections.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JvmStack:
    name: str
    #: serialization + deserialization cost (s/byte, both ends total)
    ser_seconds_per_byte: float
    #: fraction of compute time lost to GC
    gc_overhead: float
    #: multiplier (>= 1) on scheduling/dispatch overheads
    lock_contention: float
    #: per-task dispatch overhead (s)
    task_overhead: float = 2e-3

    def __post_init__(self) -> None:
        if self.ser_seconds_per_byte < 0:
            raise ValueError("serialization cost must be non-negative")
        if not (0 <= self.gc_overhead < 1):
            raise ValueError("gc_overhead in [0, 1)")
        if self.lock_contention < 1:
            raise ValueError("lock_contention must be >= 1")

    def compute_time(self, raw_seconds: float) -> float:
        """Wall time for raw_seconds of useful compute under this JVM."""
        return raw_seconds / (1.0 - self.gc_overhead)

    def serialization_time(self, nbytes: float) -> float:
        return nbytes * self.ser_seconds_per_byte

    def dispatch_time(self, n_tasks: int) -> float:
        return n_tasks * self.task_overhead * self.lock_contention


#: stock Spark on the early system software (§4.4's starting point):
#: default Java serialization, heavy GC churn, contended dispatch.
DEFAULT_STACK = JvmStack(
    name="default",
    ser_seconds_per_byte=2.5e-9,  # ~400 MB/s ser+deser
    gc_overhead=0.25,
    lock_contention=2.0,
)

#: IBM Java SDK / OpenJ9 with the paper's tunings.
OPTIMIZED_STACK = JvmStack(
    name="optimized",
    ser_seconds_per_byte=1.2e-9,  # ~830 MB/s
    gc_overhead=0.06,
    lock_contention=1.1,
)
