"""Data Broker: shared in-memory storage with a Spark adapter (§4.4).

"The team also found an additional possible optimization with a Spark
adapter for Data Broker.  The Data Broker provides common shared,
in-memory storage [25].  The work created new optimization
opportunities that can scale topic modeling with LDA even further."

The broker is a namespace-partitioned key-value store held in (modeled)
node memory: producers ``put`` tuples once, any consumer ``get``s them
without re-serialization through the JVM, and Spark-style stages can
exchange data through it instead of the shuffle path.  The adapter's
win (modeled, following refs [20, 25]): one serialization on insert,
zero on read within the same memory space, and no per-message dispatch
contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.machine import Machine, get_machine
from repro.spark.engine import SparkEngine, _payload_bytes
from repro.spark.jvm import JvmStack


class NamespaceError(KeyError):
    """Unknown namespace or key."""


class DataBroker:
    """Shared in-memory tuple store with namespaces.

    Capacity is enforced against a byte budget (the aggregate DRAM the
    broker is allowed to pin), making eviction pressure observable.
    """

    def __init__(self, capacity_bytes: float = 1e9):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._spaces: Dict[str, Dict[str, Any]] = {}
        self._bytes: float = 0.0
        self.puts = 0
        self.gets = 0

    def create_namespace(self, name: str) -> None:
        if name in self._spaces:
            raise ValueError(f"namespace {name!r} already exists")
        self._spaces[name] = {}

    def delete_namespace(self, name: str) -> None:
        space = self._spaces.pop(name, None)
        if space is None:
            raise NamespaceError(name)
        self._bytes -= sum(_payload_bytes(v) for v in space.values())

    def put(self, namespace: str, key: str, value: Any) -> None:
        if namespace not in self._spaces:
            raise NamespaceError(namespace)
        space = self._spaces[namespace]
        new_bytes = _payload_bytes(value)
        old_bytes = (
            _payload_bytes(space[key]) if key in space else 0.0
        )
        if self._bytes - old_bytes + new_bytes > self.capacity_bytes:
            raise MemoryError(
                f"broker capacity exceeded inserting {key!r}"
            )
        space[key] = value
        self._bytes += new_bytes - old_bytes
        self.puts += 1

    def get(self, namespace: str, key: str) -> Any:
        try:
            value = self._spaces[namespace][key]
        except KeyError:
            raise NamespaceError(f"{namespace}/{key}")
        self.gets += 1
        return value

    def keys(self, namespace: str) -> List[str]:
        if namespace not in self._spaces:
            raise NamespaceError(namespace)
        return sorted(self._spaces[namespace])

    @property
    def live_bytes(self) -> float:
        return self._bytes


def broker_exchange_time(
    machine: Machine,
    stack: JvmStack,
    total_bytes: float,
    n_producers: int,
) -> float:
    """Modeled time to exchange *total_bytes* through the broker.

    One serialization on insert + network injection per producer;
    consumers read from shared memory (no deserialize, no dispatch
    contention) — the mechanism behind refs [20, 25].
    """
    if n_producers < 1:
        raise ValueError("need at least one producer")
    net = machine.network
    t_ser = 0.5 * stack.serialization_time(total_bytes)  # insert only
    t_net = total_bytes / (0.8 * net.injection_bw * n_producers)
    t_lat = n_producers * net.latency
    return t_ser + t_net + t_lat


def shuffle_vs_broker(
    engine: SparkEngine, total_bytes: float
) -> Dict[str, float]:
    """Compare a classic hash shuffle against the broker exchange for
    the same payload on the same engine."""
    # hash-shuffle estimate with P^2 blocks of equal size
    blocks = {
        (s, d): total_bytes / (engine.p * engine.p)
        for s in range(engine.p) for d in range(engine.p)
    }
    t_shuffle = engine._shuffle_time(blocks, "hash")
    t_adaptive = engine._shuffle_time(blocks, "adaptive")
    t_broker = broker_exchange_time(
        engine.machine, engine.stack, total_bytes, engine.p
    )
    return {
        "hash_shuffle": t_shuffle,
        "adaptive_shuffle": t_adaptive,
        "data_broker": t_broker,
    }
