"""Mini-NVRTC: runtime source generation, constant baking, JIT caching.

Three of the paper's activities hinge on runtime compilation with
compile-time constants:

- the Cardioid DSL emits kernels whose rational-polynomial coefficients
  are baked in as literals (§4.1: "changing run-time polynomial
  coefficients into compile-time constants could yield significant
  performance"),
- MFEM's partial-assembly kernels need loop bounds known at compile
  time (§4.10.3),
- ddcMD uses launch-time code generation for constant-memory access and
  loop unrolling (§4.6).

This module provides that mechanism for Python: render a source
template with constants substituted as literals, ``compile()`` it,
``exec`` it in a controlled namespace, and cache by (template,
constants) key.  Baking constants genuinely speeds up interpreted
Python (literals beat dict/attribute lookups and enable constant
folding), so the mechanism — not just the story — is measurable here.
"""

from __future__ import annotations

import hashlib
import textwrap
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple


def _literal(value: Any) -> str:
    """Render *value* as a Python literal for source substitution."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (int, bool, str)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_literal(v) for v in value)
        return f"({inner},)" if isinstance(value, tuple) else f"[{inner}]"
    raise TypeError(f"cannot bake {type(value).__name__} as a literal")


def render_template(template: str, constants: Mapping[str, Any]) -> str:
    """Substitute ``$NAME`` placeholders in *template* with literals.

    Longer names are substituted first so ``$NP2`` is never clobbered
    by ``$NP``.
    """
    source = textwrap.dedent(template)
    for name in sorted(constants, key=len, reverse=True):
        token = f"${name}"
        if token not in source:
            raise KeyError(f"template has no placeholder {token}")
        source = source.replace(token, _literal(constants[name]))
    if "$" in source:
        leftover = source[source.index("$"):].split()[0]
        raise KeyError(f"unbound template placeholder {leftover!r}")
    return source


@dataclass
class JitKernel:
    """A compiled kernel plus its provenance."""

    fn: Callable[..., Any]
    source: str
    key: str

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


class JitCache:
    """Compile-and-cache runtime-generated kernels.

    >>> cache = JitCache()
    >>> kern = cache.compile(
    ...     "saxpy",
    ...     '''
    ...     def saxpy(x, y):
    ...         return $A * x + y
    ...     ''',
    ...     constants={"A": 2.0},
    ... )
    >>> kern(3.0, 1.0)
    7.0
    """

    def __init__(self, globals_ns: Optional[Dict[str, Any]] = None):
        self._cache: Dict[str, JitKernel] = {}
        self._globals = dict(globals_ns or {})
        self.compile_count = 0
        self.hit_count = 0

    @staticmethod
    def cache_key(entry: str, template: str, constants: Mapping[str, Any]) -> str:
        blob = repr((entry, template, sorted(constants.items())))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def compile(
        self,
        entry: str,
        template: str,
        constants: Optional[Mapping[str, Any]] = None,
        extra_globals: Optional[Mapping[str, Any]] = None,
    ) -> JitKernel:
        """Render, compile, and cache; return the entry-point callable.

        *entry* names the function the rendered source must define.
        """
        constants = dict(constants or {})
        key = self.cache_key(entry, template, constants)
        hit = self._cache.get(key)
        if hit is not None:
            self.hit_count += 1
            return hit
        source = render_template(template, constants)
        code = compile(source, filename=f"<jit:{entry}:{key}>", mode="exec")
        ns: Dict[str, Any] = dict(self._globals)
        if extra_globals:
            ns.update(extra_globals)
        exec(code, ns)
        if entry not in ns:
            raise NameError(f"rendered source does not define {entry!r}")
        kernel = JitKernel(fn=ns[entry], source=source, key=key)
        self._cache[key] = kernel
        self.compile_count += 1
        return kernel

    def __len__(self) -> int:
        return len(self._cache)
