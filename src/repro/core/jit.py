"""Mini-NVRTC: runtime source generation, constant baking, JIT caching.

Three of the paper's activities hinge on runtime compilation with
compile-time constants:

- the Cardioid DSL emits kernels whose rational-polynomial coefficients
  are baked in as literals (§4.1: "changing run-time polynomial
  coefficients into compile-time constants could yield significant
  performance"),
- MFEM's partial-assembly kernels need loop bounds known at compile
  time (§4.10.3),
- ddcMD uses launch-time code generation for constant-memory access and
  loop unrolling (§4.6).

This module provides that mechanism for Python: render a source
template with constants substituted as literals, ``compile()`` it,
``exec`` it in a controlled namespace, and cache by (template,
constants) key.  Baking constants genuinely speeds up interpreted
Python (literals beat dict/attribute lookups and enable constant
folding), so the mechanism — not just the story — is measurable here.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import pickle
import sys
import tempfile
import textwrap
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import validate as _validate

#: Environment variable naming the default on-disk JIT cache directory.
#: Unset (and no ``persist_dir`` argument) disables persistence.
JIT_CACHE_ENV = "REPRO_JIT_CACHE_DIR"

#: On-disk entry format version; bump on layout changes.
#: v2 added the interpreter ``cache_tag`` to the payload: the magic
#: number alone does not identify the *implementation* that produced
#: the bytecode (distinct builds can reuse a magic number), and
#: loading foreign ``marshal`` payloads can crash or misbehave.
_DISK_FORMAT = 2


def _literal(value: Any) -> str:
    """Render *value* as a Python literal for source substitution."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (int, bool, str)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_literal(v) for v in value)
        return f"({inner},)" if isinstance(value, tuple) else f"[{inner}]"
    raise TypeError(f"cannot bake {type(value).__name__} as a literal")


def render_template(template: str, constants: Mapping[str, Any]) -> str:
    """Substitute ``$NAME`` placeholders in *template* with literals.

    Longer names are substituted first so ``$NP2`` is never clobbered
    by ``$NP``.
    """
    source = textwrap.dedent(template)
    for name in sorted(constants, key=len, reverse=True):
        token = f"${name}"
        if token not in source:
            raise KeyError(f"template has no placeholder {token}")
        source = source.replace(token, _literal(constants[name]))
    if "$" in source:
        leftover = source[source.index("$"):].split()[0]
        raise KeyError(f"unbound template placeholder {leftover!r}")
    return source


@dataclass
class JitKernel:
    """A compiled kernel plus its provenance."""

    fn: Callable[..., Any]
    source: str
    key: str

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


class JitCache:
    """Compile-and-cache runtime-generated kernels.

    >>> cache = JitCache()
    >>> kern = cache.compile(
    ...     "saxpy",
    ...     '''
    ...     def saxpy(x, y):
    ...         return $A * x + y
    ...     ''',
    ...     constants={"A": 2.0},
    ... )
    >>> kern(3.0, 1.0)
    7.0

    Persistence
    -----------
    With ``persist_dir`` set (or the ``REPRO_JIT_CACHE_DIR``
    environment variable), every compiled kernel is also stored on
    disk — rendered source plus marshaled bytecode, keyed by the same
    (entry, template, constants) hash — so DSL/codegen-heavy runs skip
    both template rendering *and* ``compile()`` across processes.
    Bytecode is interpreter-version-specific, so both the interpreter
    magic number and ``sys.implementation.cache_tag`` are part of the
    entry and a mismatch of either is treated as a miss (the magic
    number alone cannot distinguish implementations that share it).
    Any corruption (truncated pickle, bad marshal payload, wrong
    entry) silently falls back to a fresh compile that overwrites the
    bad entry.
    """

    def __init__(
        self,
        globals_ns: Optional[Dict[str, Any]] = None,
        persist_dir: Optional[str] = None,
    ):
        self._cache: Dict[str, JitKernel] = {}
        self._globals = dict(globals_ns or {})
        self.compile_count = 0
        self.hit_count = 0
        if persist_dir is None:
            persist_dir = os.environ.get(JIT_CACHE_ENV) or None
        self.persist_dir = persist_dir
        self.disk_hits = 0
        self.disk_stores = 0
        self.disk_errors = 0

    @staticmethod
    def cache_key(entry: str, template: str, constants: Mapping[str, Any]) -> str:
        blob = repr((entry, template, sorted(constants.items())))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- on-disk layer ---------------------------------------------------

    def _disk_path(self, key: str) -> str:
        assert self.persist_dir is not None
        return os.path.join(self.persist_dir, f"jit-{key}.pkl")

    def _disk_load(self, key: str, entry: str) -> Optional[Tuple[str, Any]]:
        """Try the on-disk entry for *key*; (source, code) or None."""
        if self.persist_dir is None:
            return None
        try:
            with open(self._disk_path(key), "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("bad payload type")
            if payload.get("format") != _DISK_FORMAT:
                raise ValueError("format mismatch")
            if payload.get("magic") != importlib.util.MAGIC_NUMBER:
                raise ValueError("interpreter mismatch")
            if payload.get("tag") != sys.implementation.cache_tag:
                # Same magic number does not imply the same bytecode
                # producer; a foreign cache_tag is a miss, not a load.
                raise ValueError("bytecode cache_tag mismatch")
            if payload.get("entry") != entry:
                raise ValueError("entry mismatch")
            source = payload["source"]
            code = marshal.loads(payload["code"])
            if not isinstance(source, str):
                raise ValueError("bad source")
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted / stale entry: recompile (and overwrite it).
            self.disk_errors += 1
            _metrics.counter("jit.cache.corrupt").add()
            return None
        self.disk_hits += 1
        _metrics.counter("jit.cache.disk_hit").add()
        return source, code

    def _disk_store(self, key: str, entry: str, source: str, code: Any) -> None:
        if self.persist_dir is None:
            return
        payload = {
            "format": _DISK_FORMAT,
            "magic": importlib.util.MAGIC_NUMBER,
            "tag": sys.implementation.cache_tag,
            "entry": entry,
            "source": source,
            "code": marshal.dumps(code),
        }
        try:
            os.makedirs(self.persist_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.persist_dir, prefix=f".jit-{key}."
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh)
                os.replace(tmp, self._disk_path(key))  # atomic publish
            except BaseException:
                os.unlink(tmp)
                raise
            self.disk_stores += 1
            _metrics.counter("jit.cache.disk_store").add()
        except OSError:
            # Persistence is best-effort: an unwritable dir must never
            # break compilation.
            self.disk_errors += 1
            _metrics.counter("jit.cache.store_error").add()

    # -- compile ---------------------------------------------------------

    def _instantiate(
        self, entry: str, code: Any,
        extra_globals: Optional[Mapping[str, Any]],
    ) -> Callable[..., Any]:
        ns: Dict[str, Any] = dict(self._globals)
        if extra_globals:
            ns.update(extra_globals)
        exec(code, ns)
        if entry not in ns:
            raise NameError(f"rendered source does not define {entry!r}")
        return ns[entry]

    def compile(
        self,
        entry: str,
        template: str,
        constants: Optional[Mapping[str, Any]] = None,
        extra_globals: Optional[Mapping[str, Any]] = None,
    ) -> JitKernel:
        """Render, compile, and cache; return the entry-point callable.

        *entry* names the function the rendered source must define.
        Lookup order: in-memory cache, then the persistent store (if
        configured), then a fresh render + compile (which repopulates
        both layers).
        """
        constants = dict(constants or {})
        key = self.cache_key(entry, template, constants)
        hit = self._cache.get(key)
        if hit is not None:
            self.hit_count += 1
            _metrics.counter("jit.cache.hit").add()
            return hit
        loaded = self._disk_load(key, entry)
        if loaded is None:
            source = render_template(template, constants)
            code = compile(source, filename=f"<jit:{entry}:{key}>", mode="exec")
            self.compile_count += 1
            _metrics.counter("jit.cache.miss").add()
            self._disk_store(key, entry, source, code)
        else:
            source, code = loaded
            if _validate.validation_enabled():
                # warm-start contract: the disk payload must be
                # byte-identical to a fresh render + compile
                fresh_source = render_template(template, constants)
                fresh_code = compile(
                    fresh_source, filename=f"<jit:{entry}:{key}>",
                    mode="exec",
                )
                _validate.check(
                    "jit.disk",
                    source == fresh_source
                    and marshal.dumps(code) == marshal.dumps(fresh_code),
                    f"on-disk entry {key} differs from fresh compile",
                )
        kernel = JitKernel(
            fn=self._instantiate(entry, code, extra_globals),
            source=source, key=key,
        )
        self._cache[key] = kernel
        return kernel

    def __len__(self) -> int:
        return len(self._cache)
