"""Heterogeneous-system substrate shared by every proxy application.

This package is the substitution (per DESIGN.md) for the hardware the
paper used and the vendor programming models it evaluated:

- :mod:`repro.core.machine` — a catalog of the machines named in the
  paper (Witherspoon P9+V100 "final system", Minsky P8+P100 EA system,
  Cori-II KNL, Blue Gene/Q, the K40/K80 exploration clusters) with
  published peak-flop / bandwidth / link specifications.
- :mod:`repro.core.roofline` — an analytic execution-time model that
  converts a :class:`~repro.core.kernels.KernelSpec` (flops, bytes,
  launches, transfers) into device time on a given machine.
- :mod:`repro.core.forall` — a mini-RAJA: ``forall``/``kernel`` loop
  abstractions with pluggable backends (sequential Python, vectorized
  NumPy "SIMD", a simulated-device backend) that really execute the
  loop body *and* record kernel launches for the performance model.
- :mod:`repro.core.memory` — a mini-Umpire: memory spaces, pooled
  allocators, and transfer accounting between host and device spaces.
- :mod:`repro.core.jit` — a mini-NVRTC: runtime Python source
  generation with constants baked in, compiled and cached, reproducing
  the paper's JIT/compile-time-constant lessons (Cardioid DSL, MFEM
  JIT, ddcMD launch-time codegen).
"""

from repro.core.kernels import KernelSpec, TransferSpec, KernelTrace
from repro.core.traceopt import TraceOptimizer, TraceOptStats, fusible
from repro.core.machine import (
    MACHINES,
    CpuSpec,
    GpuSpec,
    LinkSpec,
    Machine,
    NetworkSpec,
    get_machine,
)
from repro.core.roofline import RooflineModel, ExecutionReport
from repro.core.forall import ExecPolicy, Forall, ExecutionContext
from repro.core.memory import MemorySpace, ManagedArray, ResourceManager, QuickPool
from repro.core.jit import JitCache, render_template

__all__ = [
    "KernelSpec",
    "TransferSpec",
    "KernelTrace",
    "TraceOptimizer",
    "TraceOptStats",
    "fusible",
    "MACHINES",
    "CpuSpec",
    "GpuSpec",
    "LinkSpec",
    "NetworkSpec",
    "Machine",
    "get_machine",
    "RooflineModel",
    "ExecutionReport",
    "ExecPolicy",
    "Forall",
    "ExecutionContext",
    "MemorySpace",
    "ManagedArray",
    "ResourceManager",
    "QuickPool",
    "JitCache",
    "render_template",
]
