"""Trace-level optimization passes: fusion and compaction.

The paper's §4.8 story (ParaDyn) is that many small adjacent loops,
each too light to amortize a kernel launch, get merged into fewer
larger kernels — removing both launch overhead and the intermediate
store/load traffic between producer and consumer.  A
:class:`~repro.core.kernels.KernelTrace` is exactly the artifact to
apply that optimization to after the fact: :class:`TraceOptimizer`
rewrites a trace the way a fusing compiler would rewrite the loop
nest, and the roofline model then *shows* the launch-overhead and
traffic savings on any catalog machine.

Two passes are available, both order-preserving:

- **fuse** — merge runs of adjacent *fusible* kernels (same launch
  count, precision, and efficiency class) via
  :meth:`KernelSpec.fused`, which drops the intermediate
  write-then-read traffic.  Fusion deliberately changes modeled time
  (that is the optimization); flops are conserved exactly.
- **compact** — coalesce repeated identical specs into (spec, summed
  launches) groups via :meth:`KernelTrace.compacted`.  Compaction
  never changes modeled time (pricing is linear in launches); it makes
  pricing a 10^5-launch trace cost ~unique-specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.kernels import KernelSpec, KernelTrace


#: Longest chain of kernels merged into one fused kernel.  Unbounded
#: fusion would build unreadable names and model a kernel no register
#: file could hold; real fusing compilers stop long before this.
MAX_FUSE_CHAIN = 8


def fusible(a: KernelSpec, b: KernelSpec) -> bool:
    """Whether *a* and *b* may legally fuse into one launch.

    Requires equal launch counts and precision (hard requirements of
    :meth:`KernelSpec.fused`) and the same efficiency class — fusing
    across tuning classes would silently degrade the better kernel to
    the worse one's efficiencies (``fused`` takes the min).
    """
    return (
        a.launches == b.launches
        and a.precision == b.precision
        and a.compute_efficiency == b.compute_efficiency
        and a.bandwidth_efficiency == b.bandwidth_efficiency
        and a.uses_shared_memory == b.uses_shared_memory
    )


@dataclass
class TraceOptStats:
    """What an :class:`TraceOptimizer` pass did to a trace."""

    kernels_in: int = 0
    kernels_out: int = 0
    launches_in: int = 0
    launches_out: int = 0
    #: kernels absorbed by the fusion pass
    fused_away: int = 0
    #: intermediate store+load bytes removed by fusion
    bytes_saved: float = 0.0

    @property
    def launches_saved(self) -> int:
        return self.launches_in - self.launches_out


class TraceOptimizer:
    """Fuse and/or compact a kernel trace (§4.8 merged-loops pass).

    >>> opt = TraceOptimizer()
    >>> fast_trace, stats = opt.optimize(trace)   # doctest: +SKIP
    """

    def __init__(self, fuse: bool = True, compact: bool = True,
                 max_chain: int = MAX_FUSE_CHAIN):
        if max_chain < 1:
            raise ValueError("max_chain must be >= 1")
        self.fuse = fuse
        self.compact = compact
        self.max_chain = max_chain

    # -- passes ----------------------------------------------------------

    def _fuse_pass(self, kernels: List[KernelSpec],
                   stats: TraceOptStats) -> List[KernelSpec]:
        out: List[KernelSpec] = []
        acc: Optional[KernelSpec] = None
        chain = 0
        for k in kernels:
            if acc is None:
                acc, chain = k, 1
                continue
            if chain < self.max_chain and fusible(acc, k):
                before = acc.bytes_total + k.bytes_total
                acc = acc.fused(k)
                stats.fused_away += 1
                stats.bytes_saved += before - acc.bytes_total
                chain += 1
            else:
                out.append(acc)
                acc, chain = k, 1
        if acc is not None:
            out.append(acc)
        return out

    def optimize(self, trace: KernelTrace
                 ) -> Tuple[KernelTrace, TraceOptStats]:
        """Return (optimized trace, stats); *trace* is left untouched."""
        stats = TraceOptStats(
            kernels_in=len(trace.kernels),
            launches_in=trace.total_launches,
        )
        kernels = list(trace.kernels)
        if self.fuse:
            kernels = self._fuse_pass(kernels, stats)
        out = KernelTrace()
        out.kernels = kernels
        out.transfers = list(trace.transfers)
        out.recorded_kernels = trace.recorded_kernels
        if self.compact:
            out = out.compacted()
        stats.kernels_out = len(out.kernels)
        stats.launches_out = out.total_launches
        return out, stats
