"""Trace-level optimization passes: fusion and compaction.

The paper's §4.8 story (ParaDyn) is that many small adjacent loops,
each too light to amortize a kernel launch, get merged into fewer
larger kernels — removing both launch overhead and the intermediate
store/load traffic between producer and consumer.  A
:class:`~repro.core.kernels.KernelTrace` is exactly the artifact to
apply that optimization to after the fact: :class:`TraceOptimizer`
rewrites a trace the way a fusing compiler would rewrite the loop
nest, and the roofline model then *shows* the launch-overhead and
traffic savings on any catalog machine.

Two passes are available, both order-preserving:

- **fuse** — merge runs of adjacent *fusible* kernels (same launch
  count, precision, and efficiency class) via
  :meth:`KernelSpec.fused`, which drops the intermediate
  write-then-read traffic.  Fusion deliberately changes modeled time
  (that is the optimization); flops are conserved exactly.
- **compact** — coalesce repeated identical specs into (spec, summed
  launches) groups via :meth:`KernelTrace.compacted`.  Compaction
  never changes modeled time (pricing is linear in launches); it makes
  pricing a 10^5-launch trace cost ~unique-specs.

The fuse pass normally refuses to merge kernels from different
efficiency classes — ``fused`` takes the min of each efficiency, so a
blind merge can *slow the model down*.  With ``cross_class=True`` and
a target machine, the optimizer instead prices both alternatives on
the machine's roofline and fuses exactly when the modeled time (launch
overhead included) goes down: small launch-bound kernels fuse across
the class boundary (the ddcMD bonded/angle scatters into the nonbonded
accumulation — the fused-force path `md/potentials.py` implements for
real), while big compute-bound kernels of mismatched efficiency stay
separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.kernels import KernelSpec, KernelTrace
from repro.core.machine import Machine, get_machine
from repro.core.roofline import RooflineModel


#: Longest chain of kernels merged into one fused kernel.  Unbounded
#: fusion would build unreadable names and model a kernel no register
#: file could hold; real fusing compilers stop long before this.
MAX_FUSE_CHAIN = 8


def fusible(a: KernelSpec, b: KernelSpec) -> bool:
    """Whether *a* and *b* may legally fuse into one launch.

    Requires equal launch counts and precision (hard requirements of
    :meth:`KernelSpec.fused`) and the same efficiency class — fusing
    across tuning classes would silently degrade the better kernel to
    the worse one's efficiencies (``fused`` takes the min).
    """
    return (
        a.launches == b.launches
        and a.precision == b.precision
        and a.compute_efficiency == b.compute_efficiency
        and a.bandwidth_efficiency == b.bandwidth_efficiency
        and a.uses_shared_memory == b.uses_shared_memory
    )


@dataclass
class TraceOptStats:
    """What an :class:`TraceOptimizer` pass did to a trace."""

    kernels_in: int = 0
    kernels_out: int = 0
    launches_in: int = 0
    launches_out: int = 0
    #: kernels absorbed by the fusion pass
    fused_away: int = 0
    #: of those, merges across efficiency classes (profitability-priced)
    cross_fused: int = 0
    #: intermediate store+load bytes removed by fusion
    bytes_saved: float = 0.0
    #: modeled GPU seconds removed by cross-class fusion decisions
    modeled_saved_s: float = 0.0

    @property
    def launches_saved(self) -> int:
        return self.launches_in - self.launches_out


class TraceOptimizer:
    """Fuse and/or compact a kernel trace (§4.8 merged-loops pass).

    >>> opt = TraceOptimizer()
    >>> fast_trace, stats = opt.optimize(trace)   # doctest: +SKIP
    """

    def __init__(self, fuse: bool = True, compact: bool = True,
                 max_chain: int = MAX_FUSE_CHAIN,
                 cross_class: bool = False,
                 machine: Union[None, str, Machine] = None):
        if max_chain < 1:
            raise ValueError("max_chain must be >= 1")
        self.fuse = fuse
        self.compact = compact
        self.max_chain = max_chain
        self.cross_class = cross_class
        self._model: Optional[RooflineModel] = None
        if cross_class:
            if machine is None:
                raise ValueError(
                    "cross_class fusion needs a machine to price "
                    "profitability on"
                )
            if isinstance(machine, str):
                machine = get_machine(machine)
            if machine.gpu is None:
                raise ValueError(
                    f"{machine.name} has no GPU; cross-class fusion "
                    "prices the GPU roofline"
                )
            self._model = RooflineModel(machine)

    # -- passes ----------------------------------------------------------

    def _cross_fusion(self, a: KernelSpec,
                      b: KernelSpec) -> Optional[Tuple[KernelSpec, float]]:
        """The fused spec and modeled seconds saved, if profitable.

        The fused kernel inherits the *min* of each efficiency, so the
        merge trades launch overhead and intermediate traffic against
        a possibly slower compute/bandwidth term; the roofline decides
        which side wins on this machine.
        """
        if a.launches != b.launches or a.precision != b.precision:
            return None
        model = self._model
        fused = a.fused(b)
        t_fused = model.gpu_kernel_time(fused) + model.gpu_launch_time(fused)
        t_split = (model.gpu_kernel_time(a) + model.gpu_launch_time(a)
                   + model.gpu_kernel_time(b) + model.gpu_launch_time(b))
        if t_fused >= t_split:
            return None
        return fused, t_split - t_fused

    def _fuse_pass(self, kernels: List[KernelSpec],
                   stats: TraceOptStats) -> List[KernelSpec]:
        out: List[KernelSpec] = []
        acc: Optional[KernelSpec] = None
        chain = 0
        for k in kernels:
            if acc is None:
                acc, chain = k, 1
                continue
            merged: Optional[KernelSpec] = None
            if chain < self.max_chain:
                if fusible(acc, k):
                    merged = acc.fused(k)
                elif self.cross_class:
                    cross = self._cross_fusion(acc, k)
                    if cross is not None:
                        merged, saved_s = cross
                        stats.cross_fused += 1
                        stats.modeled_saved_s += saved_s
            if merged is not None:
                stats.fused_away += 1
                stats.bytes_saved += (
                    acc.bytes_total + k.bytes_total - merged.bytes_total
                )
                acc = merged
                chain += 1
            else:
                out.append(acc)
                acc, chain = k, 1
        if acc is not None:
            out.append(acc)
        return out

    def optimize(self, trace: KernelTrace
                 ) -> Tuple[KernelTrace, TraceOptStats]:
        """Return (optimized trace, stats); *trace* is left untouched."""
        stats = TraceOptStats(
            kernels_in=len(trace.kernels),
            launches_in=trace.total_launches,
        )
        kernels = list(trace.kernels)
        if self.fuse:
            kernels = self._fuse_pass(kernels, stats)
        out = KernelTrace()
        out.kernels = kernels
        out.transfers = list(trace.transfers)
        out.recorded_kernels = trace.recorded_kernels
        if self.compact:
            out = out.compacted()
        stats.kernels_out = len(out.kernels)
        stats.launches_out = out.total_launches
        return out, stats
