"""Kernel and transfer descriptors consumed by the roofline model.

A :class:`KernelSpec` records *what a kernel does* — useful arithmetic,
bytes moved through the memory system, how many launches it needs —
independent of *where it runs*.  Proxy applications construct these
from measured array sizes and operation counts (never hard-coded
timings), and :class:`~repro.core.roofline.RooflineModel` turns them
into per-machine execution times.

:class:`KernelTrace` accumulates an ordered sequence of kernels and
transfers, which is what the `forall` layer emits while genuinely
executing the proxy code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class KernelSpec:
    """Work description of one (possibly repeated) kernel.

    Parameters
    ----------
    name:
        Label used in reports and phase breakdowns.
    flops:
        Useful floating-point operations per launch.
    bytes_read, bytes_written:
        Bytes moving through the memory system per launch, assuming the
        kernel streams its working set (the roofline model applies
        cache-residency corrections separately for CPU execution).
    launches:
        Number of identical launches this spec represents.
    precision:
        ``"fp64"`` or ``"fp32"``; selects the peak-flop column.
    compute_efficiency, bandwidth_efficiency:
        Fraction of peak this kernel can realize; defaults represent a
        well-tuned streaming kernel.  Kernel-specific tuning stories
        from the paper (shared-memory stencils reaching ~40% of peak,
        RAJA overhead ~30%) are expressed through these factors.
    uses_shared_memory:
        When True the GPU path gets the tuned-stencil compute
        efficiency treatment instead of the generic one.
    """

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    launches: int = 1
    precision: str = "fp64"
    compute_efficiency: float = 0.70
    bandwidth_efficiency: float = 0.75
    uses_shared_memory: bool = False

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError(f"kernel {self.name!r}: negative work")
        if self.launches < 0:
            raise ValueError(f"kernel {self.name!r}: negative launches")
        if self.precision not in ("fp64", "fp32"):
            raise ValueError(f"kernel {self.name!r}: bad precision {self.precision!r}")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"kernel {self.name!r}: compute_efficiency out of (0,1]")
        if not (0.0 < self.bandwidth_efficiency <= 1.0):
            raise ValueError(f"kernel {self.name!r}: bandwidth_efficiency out of (0,1]")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def pricing_fingerprint(self) -> Tuple:
        """Everything the roofline model's per-launch time depends on.

        Excludes ``name`` (labels don't change time) and ``launches``
        (pricing is linear in launches).  Used as the memoization key
        by :class:`~repro.core.roofline.RooflineModel` and as the
        grouping key for trace compaction.
        """
        return (
            self.flops,
            self.bytes_read,
            self.bytes_written,
            self.precision,
            self.compute_efficiency,
            self.bandwidth_efficiency,
            self.uses_shared_memory,
        )

    @property
    def identity(self) -> Tuple:
        """Fingerprint plus name: two specs with equal identity are
        interchangeable in a trace up to their launch counts."""
        return (self.name,) + self.pricing_fingerprint

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte; ``inf`` for pure-compute kernels."""
        total = self.bytes_total
        if total == 0:
            return float("inf")
        return self.flops / total

    def fused(self, other: "KernelSpec", name: Optional[str] = None) -> "KernelSpec":
        """Merge two kernels into one launch (the paper's loop-fusion story).

        Fusion keeps the flops of both kernels but removes the
        intermediate store/load traffic between them: data written by
        ``self`` and immediately read by ``other`` stays in registers /
        cache.  We model this by dropping ``self``'s writes and an equal
        amount of ``other``'s reads (bounded below at zero).
        """
        if self.launches != other.launches:
            raise ValueError("can only fuse kernels with equal launch counts")
        if self.precision != other.precision:
            raise ValueError("can only fuse kernels of equal precision")
        saved = min(self.bytes_written, other.bytes_read)
        return KernelSpec(
            name=name or f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read - saved,
            bytes_written=self.bytes_written - saved + other.bytes_written,
            launches=self.launches,
            precision=self.precision,
            compute_efficiency=min(self.compute_efficiency, other.compute_efficiency),
            bandwidth_efficiency=min(
                self.bandwidth_efficiency, other.bandwidth_efficiency
            ),
            uses_shared_memory=self.uses_shared_memory or other.uses_shared_memory,
        )

    def scaled(self, factor: float) -> "KernelSpec":
        """Return a copy with work scaled by *factor* (problem resizing)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )


@dataclass(frozen=True)
class TransferSpec:
    """One host<->device (or node<->node) data movement."""

    name: str
    nbytes: float
    #: "h2d", "d2h", or "net"
    direction: str = "h2d"
    count: int = 1

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"transfer {self.name!r}: negative size")
        if self.direction not in ("h2d", "d2h", "net"):
            raise ValueError(f"transfer {self.name!r}: bad direction")
        if self.count < 0:
            raise ValueError(f"transfer {self.name!r}: negative count")


class KernelTrace:
    """Ordered record of kernels and transfers from an execution.

    The trace is additive: the same kernel name may appear repeatedly
    (once per launch site) and is aggregated on demand.

    With ``compacting=True`` the trace coalesces on the fly: a recorded
    kernel identical to the previous one (same :attr:`KernelSpec.identity`,
    any launch count) folds into it by summing launches, and likewise
    for back-to-back identical transfers.  Hot loops that emit the same
    spec 10^5 times then cost O(unique specs) memory and pricing time
    instead of O(launches).  Compaction never changes modeled time:
    pricing is linear in launches (see :meth:`compacted`).
    """

    def __init__(self, compacting: bool = False) -> None:
        self.kernels: List[KernelSpec] = []
        self.transfers: List[TransferSpec] = []
        self.compacting = compacting
        #: kernels recorded (pre-compaction), for accounting
        self.recorded_kernels = 0

    def record_kernel(self, spec: KernelSpec) -> None:
        self.recorded_kernels += 1
        if self.compacting and self.kernels:
            last = self.kernels[-1]
            if last.identity == spec.identity:
                self.kernels[-1] = replace(
                    last, launches=last.launches + spec.launches
                )
                return
        self.kernels.append(spec)

    def record_transfer(self, spec: TransferSpec) -> None:
        if self.compacting and self.transfers:
            last = self.transfers[-1]
            if (last.name, last.nbytes, last.direction) == (
                spec.name, spec.nbytes, spec.direction
            ):
                self.transfers[-1] = replace(
                    last, count=last.count + spec.count
                )
                return
        self.transfers.append(spec)

    def extend(self, other: "KernelTrace") -> None:
        if self.compacting:
            for k in other.kernels:
                self.record_kernel(k)
            for t in other.transfers:
                self.record_transfer(t)
        else:
            self.kernels.extend(other.kernels)
            self.transfers.extend(other.transfers)
            self.recorded_kernels += other.recorded_kernels

    def compacted(self) -> "KernelTrace":
        """Return a compacted copy: identical specs merged into
        (spec, summed launches) groups, first-occurrence order.

        Because per-launch time depends only on
        :attr:`KernelSpec.pricing_fingerprint` and total time is linear
        in launches (and transfer time linear in count), the compacted
        trace prices identically to this one up to floating-point
        summation order.
        """
        out = KernelTrace()
        out.recorded_kernels = self.recorded_kernels
        kpos: Dict[Tuple, int] = {}
        for k in self.kernels:
            key = k.identity
            at = kpos.get(key)
            if at is None:
                kpos[key] = len(out.kernels)
                out.kernels.append(k)
            else:
                prev = out.kernels[at]
                out.kernels[at] = replace(
                    prev, launches=prev.launches + k.launches
                )
        tpos: Dict[Tuple, int] = {}
        for t in self.transfers:
            key = (t.name, t.nbytes, t.direction)
            at = tpos.get(key)
            if at is None:
                tpos[key] = len(out.transfers)
                out.transfers.append(t)
            else:
                prev = out.transfers[at]
                out.transfers[at] = replace(prev, count=prev.count + t.count)
        return out

    # -- aggregate views -------------------------------------------------

    @property
    def total_flops(self) -> float:
        return sum(k.flops * k.launches for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.bytes_total * k.launches for k in self.kernels)

    @property
    def total_launches(self) -> int:
        return sum(k.launches for k in self.kernels)

    @property
    def total_transfer_bytes(self) -> float:
        return sum(t.nbytes * t.count for t in self.transfers)

    def by_name(self) -> Dict[str, KernelSpec]:
        """Aggregate kernels with the same name into one spec."""
        merged: Dict[str, KernelSpec] = {}
        for k in self.kernels:
            if k.name not in merged:
                merged[k.name] = k
            else:
                prev = merged[k.name]
                merged[k.name] = replace(
                    prev,
                    flops=prev.flops + k.flops * k.launches / max(prev.launches, 1),
                    bytes_read=prev.bytes_read
                    + k.bytes_read * k.launches / max(prev.launches, 1),
                    bytes_written=prev.bytes_written
                    + k.bytes_written * k.launches / max(prev.launches, 1),
                )
        return merged

    def clear(self) -> None:
        self.kernels.clear()
        self.transfers.clear()

    def __len__(self) -> int:
        return len(self.kernels) + len(self.transfers)
