"""Mini-RAJA: portable loop execution with pluggable backends.

The paper's central programming-model lesson is that one abstraction
(``forall`` over an index range) can retarget loop bodies to CPUs or
GPUs, at some overhead relative to hand-written CUDA.  This module
reproduces that mechanism:

- :class:`ExecPolicy` selects a backend — ``SEQ`` (interpreted
  per-element Python, the "reference" path), ``SIMD`` (vectorized
  NumPy, the tuned CPU path), ``OPENMP`` (vectorized NumPy plus a
  modeled multicore dispatch), ``CUDA`` (vectorized NumPy plus device
  residency checks and kernel-launch accounting).
- Every launch through a device policy appends a
  :class:`~repro.core.kernels.KernelSpec` to the context trace, so the
  roofline model can price the run on any machine afterwards.
- A per-policy *dispatch overhead factor* reproduces the measured
  RAJA-vs-CUDA gap (§4.9: RAJA ≈30% slower than hand CUDA for
  substantially less effort); hand-"CUDA" call sites pass
  ``tuned=True`` to drop that penalty.

Loop bodies are written once, vectorized: ``body(idx)`` receives a
NumPy index array.  The SEQ backend calls it with one index at a time,
which is how the test suite proves backend equivalence (the RAJA
correctness contract).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
from repro.core.machine import Machine
from repro.core.memory import ManagedArray, MemorySpace, ResourceManager


class ExecPolicy(enum.Enum):
    SEQ = "seq"
    SIMD = "simd"
    OPENMP = "openmp"
    CUDA = "cuda"

    @property
    def is_device(self) -> bool:
        return self is ExecPolicy.CUDA


#: Abstraction overhead relative to a tuned native kernel, per policy.
#: Encoded as a multiplier on effective efficiency (<=1).
POLICY_EFFICIENCY = {
    ExecPolicy.SEQ: 1.0,
    ExecPolicy.SIMD: 1.0,
    ExecPolicy.OPENMP: 0.95,
    ExecPolicy.CUDA: 0.77,  # RAJA-style dispatch: ~30% slower than tuned CUDA
}


class ResidencyError(RuntimeError):
    """A device launch touched a host-resident ManagedArray."""


@dataclass
class ExecutionContext:
    """Shared state for a portable execution: machine, memory, trace."""

    machine: Optional[Machine] = None
    resources: Optional[ResourceManager] = None
    trace: KernelTrace = field(default_factory=KernelTrace)

    def __post_init__(self) -> None:
        if self.resources is None:
            self.resources = ResourceManager(trace=self.trace)
        else:
            # Share one trace between loop launches and memory copies.
            self.resources.trace = self.trace


BodyFn = Callable[[np.ndarray], None]


class Forall:
    """Portable parallel-loop launcher bound to an execution context.

    >>> ctx = ExecutionContext()
    >>> fa = Forall(ctx, ExecPolicy.SIMD)
    >>> out = np.zeros(8)
    >>> fa.run("fill", 8, lambda i: out.__setitem__(i, i * 2.0),
    ...        flops_per_elem=1, bytes_per_elem=8)
    >>> float(out[3])
    6.0
    """

    #: elements per modeled device block; launches are charged per call,
    #: not per block, matching a single CUDA grid launch.
    def __init__(self, ctx: ExecutionContext, policy: ExecPolicy):
        self.ctx = ctx
        self.policy = policy

    # ------------------------------------------------------------------

    def run(
        self,
        name: str,
        n: int,
        body: BodyFn,
        arrays: Sequence[ManagedArray] = (),
        flops_per_elem: float = 0.0,
        bytes_per_elem: float = 0.0,
        precision: str = "fp64",
        tuned: bool = False,
        uses_shared_memory: bool = False,
    ) -> None:
        """Execute ``body`` over ``range(n)`` under the current policy.

        ``arrays`` lists the ManagedArrays the body touches; the CUDA
        policy validates their residency.  ``flops_per_elem`` and
        ``bytes_per_elem`` describe per-element work for the
        performance model.  ``tuned=True`` marks a hand-optimized
        native kernel (no abstraction penalty).
        """
        if n < 0:
            raise ValueError("negative trip count")
        self._check_residency(name, arrays)
        if n > 0:
            if self.policy is ExecPolicy.SEQ:
                idx = np.empty(1, dtype=np.intp)
                for i in range(n):
                    idx[0] = i
                    body(idx)
            else:
                body(np.arange(n, dtype=np.intp))
        self._record(
            name, n, flops_per_elem, bytes_per_elem, precision, tuned,
            uses_shared_memory,
        )

    def kernel(
        self,
        name: str,
        shape: Tuple[int, ...],
        body: Callable[..., None],
        arrays: Sequence[ManagedArray] = (),
        flops_per_elem: float = 0.0,
        bytes_per_elem: float = 0.0,
        precision: str = "fp64",
        tuned: bool = False,
        uses_shared_memory: bool = False,
    ) -> None:
        """Nested-loop launch (RAJA::kernel / forallN successor, §4.11).

        ``body`` receives one index array per dimension (already
        broadcast against each other in C order).
        """
        if any(s < 0 for s in shape):
            raise ValueError("negative extent")
        n = int(np.prod(shape)) if shape else 0
        self._check_residency(name, arrays)
        if n > 0:
            if self.policy is ExecPolicy.SEQ:
                for flat in range(n):
                    idxs = np.unravel_index(flat, shape)
                    body(*[np.array([i], dtype=np.intp) for i in idxs])
            else:
                grids = np.meshgrid(
                    *[np.arange(s, dtype=np.intp) for s in shape], indexing="ij"
                )
                body(*[g.ravel() for g in grids])
        self._record(
            name, n, flops_per_elem, bytes_per_elem, precision, tuned,
            uses_shared_memory,
        )

    def reduce_sum(
        self,
        name: str,
        values: np.ndarray,
        arrays: Sequence[ManagedArray] = (),
        tuned: bool = False,
    ) -> float:
        """Parallel reduction; modeled as a bandwidth-bound pass."""
        self._check_residency(name, arrays)
        total = float(np.sum(values))
        self._record(
            name, int(values.size), flops_per_elem=1.0,
            bytes_per_elem=float(values.itemsize), precision="fp64",
            tuned=tuned, uses_shared_memory=False,
        )
        return total

    # ------------------------------------------------------------------

    def _check_residency(self, name: str, arrays: Sequence[ManagedArray]) -> None:
        if not self.policy.is_device:
            return
        for arr in arrays:
            if arr.space is MemorySpace.HOST:
                raise ResidencyError(
                    f"kernel {name!r} launched on device but array "
                    f"{arr.name or 'anon'!r} is host-resident"
                )
            if arr.space is MemorySpace.UNIFIED:
                # UM access from the device may fault pages in.
                assert self.ctx.resources is not None
                self.ctx.resources.touch_unified(arr, from_device=True)

    def _record(
        self,
        name: str,
        n: int,
        flops_per_elem: float,
        bytes_per_elem: float,
        precision: str,
        tuned: bool,
        uses_shared_memory: bool,
    ) -> None:
        eff = 1.0 if tuned else POLICY_EFFICIENCY[self.policy]
        spec = KernelSpec(
            name=name,
            flops=flops_per_elem * n,
            bytes_read=bytes_per_elem * n * 0.6,
            bytes_written=bytes_per_elem * n * 0.4,
            launches=1,
            precision=precision,
            compute_efficiency=max(1e-6, 0.70 * eff),
            bandwidth_efficiency=max(1e-6, 0.75 * eff),
            uses_shared_memory=uses_shared_memory,
        )
        self.ctx.trace.record_kernel(spec)
