"""Mini-Umpire: memory spaces, pooled allocators, transfer accounting.

The paper's library-integration lesson (§4.10) is that performance
hinges on *data residency*: who allocates, where the bytes live, and
how often they cross the host-device link.  SAMRAI amortizes
allocations through Umpire pools; MFEM/hypre/SUNDIALS coordinate
ownership so vectors stay on the GPU.

This module reproduces that machinery in pure Python.  Arrays are real
NumPy arrays (so the proxies actually compute), tagged with a
:class:`MemorySpace`.  A :class:`ResourceManager` hands out
:class:`ManagedArray` objects, tracks live allocations per space, and
records every copy between spaces in a
:class:`~repro.core.kernels.KernelTrace` so the roofline model can
charge transfer time.  :class:`QuickPool` reproduces Umpire's pooling
strategy: grow-on-demand blocks, free-list reuse, high-water-mark
statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernels import KernelTrace, TransferSpec


class MemorySpace(enum.Enum):
    """Where an allocation lives."""

    HOST = "host"
    DEVICE = "device"
    #: CUDA Unified Memory: accessible from both sides; copies are
    #: implicit (page migration) and modeled at page granularity.
    UNIFIED = "um"


#: Unified Memory migrates in 64 KiB blocks on the systems in the paper
#: (§4.11: "VBL uses CUDA Unified Memory, which is equivalent to
#: transferring blocks of 64 kilobytes").
UM_PAGE_BYTES = 64 * 1024


class AllocationError(RuntimeError):
    """Raised when a space's capacity would be exceeded."""


@dataclass
class ManagedArray:
    """A NumPy array tagged with its memory space.

    The ``data`` attribute is always usable — this is a *model* of
    residency, not an enforcement mechanism — but the `forall` device
    backend checks the tag and raises on host-resident inputs, which is
    how tests assert the data-residency discipline the paper teaches.
    """

    data: np.ndarray
    space: MemorySpace
    name: str = ""
    _manager: Optional["ResourceManager"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def free(self) -> None:
        if self._manager is not None:
            self._manager.deallocate(self)


@dataclass
class _SpaceStats:
    live_bytes: int = 0
    high_water: int = 0
    alloc_count: int = 0
    free_count: int = 0

    def on_alloc(self, nbytes: int) -> None:
        self.live_bytes += nbytes
        self.alloc_count += 1
        self.high_water = max(self.high_water, self.live_bytes)

    def on_free(self, nbytes: int) -> None:
        self.live_bytes -= nbytes
        self.free_count += 1


class ResourceManager:
    """Tracks allocations per space and records inter-space copies.

    Parameters
    ----------
    device_capacity_bytes:
        Optional cap on DEVICE (and UNIFIED-resident) bytes; exceeding
        it raises :class:`AllocationError`.  This is how the Cretin
        memory-capacity story (§4.3: large atomic models idle 60% of
        CPU cores; the GPU path only needs one zone resident) is
        exercised by real allocation failures.
    trace:
        Optional shared :class:`KernelTrace` to append transfer records
        to; a fresh one is created otherwise.
    """

    def __init__(
        self,
        device_capacity_bytes: Optional[float] = None,
        trace: Optional[KernelTrace] = None,
    ):
        self.device_capacity_bytes = device_capacity_bytes
        self.trace = trace if trace is not None else KernelTrace()
        self.stats: Dict[MemorySpace, _SpaceStats] = {
            space: _SpaceStats() for space in MemorySpace
        }

    # -- allocation ------------------------------------------------------

    def allocate(
        self,
        shape,
        dtype=np.float64,
        space: MemorySpace = MemorySpace.HOST,
        name: str = "",
        fill: Optional[float] = None,
    ) -> ManagedArray:
        data = np.empty(shape, dtype=dtype)
        if fill is not None:
            data.fill(fill)
        self._charge(space, data.nbytes)
        arr = ManagedArray(data=data, space=space, name=name, _manager=self)
        return arr

    def adopt(
        self, data: np.ndarray, space: MemorySpace, name: str = ""
    ) -> ManagedArray:
        """Wrap an existing array (library interoperability: accepting
        pointers allocated elsewhere, §4.10.4)."""
        self._charge(space, data.nbytes)
        return ManagedArray(data=data, space=space, name=name, _manager=self)

    def deallocate(self, arr: ManagedArray) -> None:
        self.stats[arr.space].on_free(arr.nbytes)
        arr._manager = None

    def _charge(self, space: MemorySpace, nbytes: int) -> None:
        if (
            space in (MemorySpace.DEVICE, MemorySpace.UNIFIED)
            and self.device_capacity_bytes is not None
        ):
            projected = (
                self.stats[MemorySpace.DEVICE].live_bytes
                + self.stats[MemorySpace.UNIFIED].live_bytes
                + nbytes
            )
            if projected > self.device_capacity_bytes:
                raise AllocationError(
                    f"device capacity exceeded: {projected} > "
                    f"{self.device_capacity_bytes} bytes"
                )
        self.stats[space].on_alloc(nbytes)

    # -- movement ---------------------------------------------------------

    def copy(self, src: ManagedArray, dst: ManagedArray, name: str = "") -> None:
        """Copy ``src`` into ``dst``, recording any space crossing."""
        if src.data.shape != dst.data.shape:
            raise ValueError("copy between mismatched shapes")
        np.copyto(dst.data, src.data)
        self._record_crossing(src.space, dst.space, src.nbytes, name)

    def move(self, arr: ManagedArray, space: MemorySpace, name: str = "") -> None:
        """Re-home *arr* in *space* (records the transfer)."""
        if arr.space == space:
            return
        self.stats[arr.space].on_free(arr.nbytes)
        self._charge(space, arr.nbytes)
        self._record_crossing(arr.space, space, arr.nbytes, name)
        arr.space = space

    def touch_unified(
        self, arr: ManagedArray, nbytes: Optional[int] = None, from_device: bool = True
    ) -> None:
        """Model a UM page-migration fault pattern on *arr*.

        Unified-memory access from the "other" side migrates pages of
        :data:`UM_PAGE_BYTES`; we record one transfer per page, which
        is what makes UM cheaper than many tiny explicit copies but
        more expensive than one big one (§4.11).
        """
        if arr.space != MemorySpace.UNIFIED:
            raise ValueError("touch_unified on a non-UM array")
        nbytes = arr.nbytes if nbytes is None else nbytes
        pages = max(1, int(np.ceil(nbytes / UM_PAGE_BYTES)))
        direction = "h2d" if from_device else "d2h"
        self.trace.record_transfer(
            TransferSpec(
                name=f"um-migrate:{arr.name or 'anon'}",
                nbytes=min(nbytes, UM_PAGE_BYTES),
                direction=direction,
                count=pages,
            )
        )

    def _record_crossing(
        self, src: MemorySpace, dst: MemorySpace, nbytes: int, name: str
    ) -> None:
        if src == dst:
            return
        if MemorySpace.DEVICE in (src, dst) or MemorySpace.UNIFIED in (src, dst):
            direction = "h2d" if dst in (MemorySpace.DEVICE, MemorySpace.UNIFIED) else "d2h"
            self.trace.record_transfer(
                TransferSpec(name=name or "copy", nbytes=nbytes, direction=direction)
            )

    # -- reporting ---------------------------------------------------------

    def live_bytes(self, space: MemorySpace) -> int:
        return self.stats[space].live_bytes

    def high_water(self, space: MemorySpace) -> int:
        return self.stats[space].high_water


class QuickPool:
    """Umpire-style growing pool allocator over a ResourceManager.

    Blocks are recycled through per-size free lists; the pool only hits
    the underlying manager when no cached block fits, amortizing
    allocation cost exactly as SAMRAI does (§4.10.5).
    """

    def __init__(
        self,
        manager: ResourceManager,
        space: MemorySpace = MemorySpace.DEVICE,
        initial_block_bytes: int = 1 << 20,
        growth_factor: float = 2.0,
    ):
        if growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1")
        self.manager = manager
        self.space = space
        self.next_block_bytes = int(initial_block_bytes)
        self.growth_factor = growth_factor
        self._free: Dict[int, List[ManagedArray]] = {}
        self.hits = 0
        self.misses = 0

    def allocate(self, shape, dtype=np.float64, name: str = "") -> ManagedArray:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        bucket = self._bucket(nbytes)
        free_list = self._free.get(bucket)
        if free_list:
            self.hits += 1
            block = free_list.pop()
        else:
            self.misses += 1
            # each block serves one live allocation (no subdivision),
            # so blocks are sized to the rounded request; repeated
            # misses at the same bucket escalate the bucket itself
            # through the growth factor of the *request stream*, not a
            # global counter, keeping waste bounded at 2x
            block_bytes = bucket
            block = self.manager.allocate(
                (block_bytes,), dtype=np.uint8, space=self.space,
                name=f"pool:{name}",
            )
        view = block.data[:nbytes].view(dtype)[: int(np.prod(shape))]
        arr = ManagedArray(
            data=view.reshape(shape), space=self.space, name=name, _manager=None
        )
        arr._pool_block = block  # type: ignore[attr-defined]
        arr._pool_bucket = bucket  # type: ignore[attr-defined]
        return arr

    def release(self, arr: ManagedArray) -> None:
        block = getattr(arr, "_pool_block", None)
        bucket = getattr(arr, "_pool_bucket", None)
        if block is None or bucket is None:
            raise ValueError("array was not allocated from this pool")
        self._free.setdefault(bucket, []).append(block)

    @staticmethod
    def _bucket(nbytes: int) -> int:
        """Round up to the next power of two (free-list key)."""
        if nbytes <= 0:
            return 1
        return 1 << (int(nbytes - 1).bit_length())
