"""Catalog of the machines the paper evaluates on.

Every quantitative result in the paper is a comparison between (or a
scaling run on) one of a small set of machines: the Sierra
"final system" (Witherspoon nodes: 2x POWER9 + 4x V100, NVLink2), the
early-access Minsky system (2x POWER8 + 4x P100, NVLink1), Cori-II
(KNL) at NERSC, the on-site exploration clusters (Sandy Bridge + K40,
Haswell + K80), Blue Gene/Q, and the historical machines in Table 2.

Specs below are the published peak numbers for each part.  The roofline
model applies achievable-fraction efficiencies on top of these peaks;
those efficiencies, not the peaks, are the calibration knobs (see
``RooflineModel``).

All bandwidths are bytes/second, all rates flop/s, all latencies
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket."""

    name: str
    cores: int
    #: double-precision peak per socket (flop/s)
    peak_flops: float
    #: STREAM-like sustainable memory bandwidth per socket (B/s)
    mem_bw: float
    #: last-level cache per socket (bytes); used by cache-residency models
    llc_bytes: float
    smt: int = 1

    @property
    def peak_flops_per_core(self) -> float:
        return self.peak_flops / self.cores


@dataclass(frozen=True)
class GpuSpec:
    """One GPU device."""

    name: str
    #: double-precision peak (flop/s)
    peak_flops: float
    #: single-precision peak (flop/s)
    peak_flops_sp: float
    #: device memory bandwidth (B/s)
    mem_bw: float
    #: device memory capacity (bytes)
    mem_bytes: float
    #: kernel launch overhead (s)
    launch_overhead: float
    #: number of SMs; used for occupancy-style tail effects
    sms: int
    #: shared-memory per SM (bytes)
    shared_mem_per_sm: float = 96 * 1024
    #: True when the L1/tex path is unified and as fast as texture
    #: fetches (Volta); Pascal/Kepler benefit from explicit texture use.
    unified_fast_l1: bool = False


@dataclass(frozen=True)
class LinkSpec:
    """Host-device (or device-device) interconnect."""

    name: str
    #: per-direction bandwidth (B/s)
    bandwidth: float
    #: per-transfer latency (s)
    latency: float

    def transfer_time(self, nbytes: float) -> float:
        """Time to move *nbytes* across the link (one transfer)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-node network."""

    name: str
    #: per-node injection bandwidth (B/s)
    injection_bw: float
    #: small-message latency (s)
    latency: float


#: seconds per year, used by the MTBF catalog below
YEAR_SECONDS = 365.0 * 24.0 * 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """Calibrated failure rates for one node type.

    MTBFs are *per component* (one node, one GPU); the aggregate
    system rate scales with the component count
    (:meth:`system_mtbf`).  Rates are the calibration knobs of the
    resilience layer (:mod:`repro.resilience`), the same way roofline
    efficiencies calibrate the performance model.
    """

    #: mean seconds between fatal failures of one node
    node_mtbf: float
    #: mean seconds between fatal failures of one GPU
    gpu_mtbf: float = float("inf")
    #: silent-data-corruption events per GPU-hour
    sdc_per_gpu_hour: float = 0.0

    def __post_init__(self) -> None:
        if self.node_mtbf <= 0 or self.gpu_mtbf <= 0:
            raise ValueError("MTBFs must be positive")
        if self.sdc_per_gpu_hour < 0:
            raise ValueError("SDC rate must be non-negative")

    def system_mtbf(self, nodes: int, gpus_per_node: int = 0) -> float:
        """Aggregate MTBF of *nodes* nodes (failures combine as rates)."""
        if nodes < 1 or gpus_per_node < 0:
            raise ValueError("bad component counts")
        rate = nodes / self.node_mtbf
        if gpus_per_node:
            rate += nodes * gpus_per_node / self.gpu_mtbf
        return 1.0 / rate


@dataclass(frozen=True)
class Machine:
    """A full node type plus its system-level context."""

    name: str
    year: int
    cpu: CpuSpec
    cpu_sockets: int
    gpu: Optional[GpuSpec]
    gpus_per_node: int
    host_device_link: Optional[LinkSpec]
    network: NetworkSpec
    #: node DRAM (bytes)
    node_mem_bytes: float
    #: node-local NVMe capacity (bytes); 0 when absent
    nvme_bytes: float = 0.0
    #: NVMe read bandwidth (B/s)
    nvme_bw: float = 0.0
    max_nodes: int = 1
    #: calibrated failure rates; None falls back to the year-based
    #: heuristic in :func:`repro.resilience.faults.fault_spec_for`
    faults: Optional[FaultSpec] = None

    @property
    def cpu_peak_flops(self) -> float:
        """Aggregate CPU double-precision peak for the node."""
        return self.cpu.peak_flops * self.cpu_sockets

    @property
    def cpu_mem_bw(self) -> float:
        """Aggregate CPU-attached memory bandwidth for the node."""
        return self.cpu.mem_bw * self.cpu_sockets

    @property
    def gpu_peak_flops(self) -> float:
        """Aggregate GPU double-precision peak for the node."""
        if self.gpu is None:
            return 0.0
        return self.gpu.peak_flops * self.gpus_per_node

    @property
    def gpu_mem_bw(self) -> float:
        if self.gpu is None:
            return 0.0
        return self.gpu.mem_bw * self.gpus_per_node

    @property
    def total_cores(self) -> int:
        return self.cpu.cores * self.cpu_sockets

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        gpu = (
            f", {self.gpus_per_node}x {self.gpu.name}" if self.gpu else ""
        )
        return f"{self.name} ({self.cpu_sockets}x {self.cpu.name}{gpu})"


# --------------------------------------------------------------------------
# Part catalog (published peaks).
# --------------------------------------------------------------------------

POWER8 = CpuSpec(
    name="POWER8", cores=10, peak_flops=0.29e12, mem_bw=115e9,
    llc_bytes=80 * 2**20, smt=8,
)
POWER9 = CpuSpec(
    name="POWER9", cores=22, peak_flops=0.54e12, mem_bw=135e9,
    llc_bytes=110 * 2**20, smt=4,
)
HASWELL = CpuSpec(
    name="Haswell E5-2695v3", cores=14, peak_flops=0.5e12, mem_bw=60e9,
    llc_bytes=35 * 2**20, smt=2,
)
SANDYBRIDGE = CpuSpec(
    name="Sandy Bridge E5-2670", cores=8, peak_flops=0.166e12, mem_bw=42e9,
    llc_bytes=20 * 2**20, smt=2,
)
KNL = CpuSpec(
    name="KNL 7250", cores=68, peak_flops=2.6e12, mem_bw=450e9,
    llc_bytes=34 * 2**20, smt=4,
)
BGQ_CPU = CpuSpec(
    name="BG/Q A2", cores=16, peak_flops=0.2048e12, mem_bw=28e9,
    llc_bytes=32 * 2**20, smt=4,
)
XEON_2011 = CpuSpec(
    name="Westmere X5660", cores=6, peak_flops=0.067e12, mem_bw=25e9,
    llc_bytes=12 * 2**20, smt=2,
)
IVYBRIDGE = CpuSpec(
    name="Ivy Bridge E5-2695v2", cores=12, peak_flops=0.23e12, mem_bw=50e9,
    llc_bytes=30 * 2**20, smt=2,
)

V100 = GpuSpec(
    name="V100", peak_flops=7.8e12, peak_flops_sp=15.7e12, mem_bw=900e9,
    mem_bytes=16 * 2**30, launch_overhead=5e-6, sms=80,
    unified_fast_l1=True,
)
P100 = GpuSpec(
    name="P100", peak_flops=5.3e12, peak_flops_sp=10.6e12, mem_bw=732e9,
    mem_bytes=16 * 2**30, launch_overhead=7e-6, sms=56,
)
K80 = GpuSpec(
    name="K80 (per die)", peak_flops=1.45e12, peak_flops_sp=4.37e12,
    mem_bw=240e9, mem_bytes=12 * 2**30, launch_overhead=10e-6, sms=13,
)
K40 = GpuSpec(
    name="K40", peak_flops=1.43e12, peak_flops_sp=4.29e12, mem_bw=288e9,
    mem_bytes=12 * 2**30, launch_overhead=10e-6, sms=15,
)

NVLINK2 = LinkSpec(name="NVLink2 (2 bricks)", bandwidth=75e9, latency=2e-6)
NVLINK1 = LinkSpec(name="NVLink1 (2 bricks)", bandwidth=40e9, latency=3e-6)
PCIE3 = LinkSpec(name="PCIe gen3 x16", bandwidth=12e9, latency=6e-6)
PCIE2 = LinkSpec(name="PCIe gen2 x16", bandwidth=6e9, latency=8e-6)

EDR_IB = NetworkSpec(name="EDR InfiniBand x2", injection_bw=25e9, latency=1.5e-6)
FDR_IB = NetworkSpec(name="FDR InfiniBand", injection_bw=7e9, latency=2e-6)
QDR_IB = NetworkSpec(name="QDR InfiniBand", injection_bw=4e9, latency=2.5e-6)
ARIES = NetworkSpec(name="Cray Aries", injection_bw=10e9, latency=1.8e-6)
BGQ_TORUS = NetworkSpec(name="BG/Q 5D torus", injection_bw=20e9, latency=2.5e-6)
GEMINI = NetworkSpec(name="Cray Gemini", injection_bw=6e9, latency=2.2e-6)


# --------------------------------------------------------------------------
# Fault-rate catalog.
#
# Per-node MTBFs are in the published range for each machine class
# (tens of node-years for production systems, less for early-access
# and end-of-life hardware); per-GPU MTBFs follow the Titan/Sierra
# experience that GPUs fail a few times more often than the rest of
# the node combined.  At 4320 Sierra nodes these yield a system-level
# hard-fault every ~13 hours — the multi-day-campaign regime the
# resilience layer exists for.
# --------------------------------------------------------------------------

SIERRA_FAULTS = FaultSpec(
    node_mtbf=25 * YEAR_SECONDS, gpu_mtbf=15 * YEAR_SECONDS,
    sdc_per_gpu_hour=2e-5,
)
EA_FAULTS = FaultSpec(
    node_mtbf=10 * YEAR_SECONDS, gpu_mtbf=6 * YEAR_SECONDS,
    sdc_per_gpu_hour=5e-5,
)
COMMODITY_GPU_FAULTS = FaultSpec(
    node_mtbf=8 * YEAR_SECONDS, gpu_mtbf=5 * YEAR_SECONDS,
    sdc_per_gpu_hour=8e-5,
)
CPU_ONLY_FAULTS = FaultSpec(node_mtbf=20 * YEAR_SECONDS)
BGQ_FAULTS = FaultSpec(node_mtbf=60 * YEAR_SECONDS)


# --------------------------------------------------------------------------
# Machine catalog.
# --------------------------------------------------------------------------

MACHINES: Dict[str, Machine] = {}


def _register(machine: Machine) -> Machine:
    MACHINES[machine.name] = machine
    return machine


#: Sierra "final system": Witherspoon nodes.
SIERRA = _register(Machine(
    name="sierra", year=2018, cpu=POWER9, cpu_sockets=2,
    gpu=V100, gpus_per_node=4, host_device_link=NVLINK2,
    network=EDR_IB, node_mem_bytes=256 * 2**30,
    nvme_bytes=1.6e12, nvme_bw=5.5e9, max_nodes=4320,
    faults=SIERRA_FAULTS,
))

#: Early-access system: Minsky nodes (P8 + P100, NVLink1).
EA_MINSKY = _register(Machine(
    name="ea-minsky", year=2016, cpu=POWER8, cpu_sockets=2,
    gpu=P100, gpus_per_node=4, host_device_link=NVLINK1,
    network=EDR_IB, node_mem_bytes=256 * 2**30, max_nodes=54,
    faults=EA_FAULTS,
))

#: Cori-II at NERSC (KNL): the SW4 comparison machine.
CORI_II = _register(Machine(
    name="cori-ii", year=2016, cpu=KNL, cpu_sockets=1,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=ARIES, node_mem_bytes=96 * 2**30, max_nodes=9688,
    faults=CPU_ONLY_FAULTS,
))

#: On-site visualization cluster used for early exploration.
SURFACE = _register(Machine(
    name="surface", year=2014, cpu=SANDYBRIDGE, cpu_sockets=2,
    gpu=K40, gpus_per_node=2, host_device_link=PCIE3,
    network=FDR_IB, node_mem_bytes=256 * 2**30, max_nodes=162,
    faults=COMMODITY_GPU_FAULTS,
))

#: Dedicated development machine (Haswell + K80).
RZHASGPU = _register(Machine(
    name="rzhasgpu", year=2015, cpu=HASWELL, cpu_sockets=2,
    gpu=K80, gpus_per_node=4, host_device_link=PCIE3,
    network=FDR_IB, node_mem_bytes=256 * 2**30, max_nodes=20,
    faults=COMMODITY_GPU_FAULTS,
))

#: Blue Gene/Q (Sequoia class): the prior-generation scalable platform.
BGQ = _register(Machine(
    name="bgq", year=2012, cpu=BGQ_CPU, cpu_sockets=1,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=BGQ_TORUS, node_mem_bytes=16 * 2**30, max_nodes=98304,
    faults=BGQ_FAULTS,
))

# Historical machines from Table 2 (graph analytics).  Specs are
# representative of the named systems' node types; what matters to the
# Table 2 reproduction is the NVMe/DRAM capacity tiers and network.
KRAKEN = _register(Machine(
    name="kraken", year=2011, cpu=XEON_2011, cpu_sockets=4,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=QDR_IB, node_mem_bytes=512 * 2**30,
    nvme_bytes=12e12, nvme_bw=1.2e9, max_nodes=1,
))
LEVIATHAN = _register(Machine(
    name="leviathan", year=2011, cpu=XEON_2011, cpu_sockets=8,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=QDR_IB, node_mem_bytes=1024 * 2**30,
    nvme_bytes=24e12, nvme_bw=1.4e9, max_nodes=1,
))
HYPERION = _register(Machine(
    name="hyperion", year=2011, cpu=XEON_2011, cpu_sockets=2,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=QDR_IB, node_mem_bytes=48 * 2**30,
    nvme_bytes=0.4e12, nvme_bw=0.9e9, max_nodes=64,
))
BERTHA = _register(Machine(
    name="bertha", year=2014, cpu=IVYBRIDGE, cpu_sockets=4,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=FDR_IB, node_mem_bytes=3072 * 2**30,
    nvme_bytes=50e12, nvme_bw=1.25e9, max_nodes=1,
))
CATALYST = _register(Machine(
    name="catalyst", year=2014, cpu=IVYBRIDGE, cpu_sockets=2,
    gpu=None, gpus_per_node=0, host_device_link=None,
    network=QDR_IB, node_mem_bytes=128 * 2**30,
    nvme_bytes=0.8e12, nvme_bw=1.5e9, max_nodes=324,
))


def get_machine(name: str) -> Machine:
    """Look up a machine by name; raises ``KeyError`` with suggestions."""
    try:
        return MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}")
