"""Analytic execution-time model for the machine catalog.

This is the heart of the hardware substitution: given a
:class:`~repro.core.kernels.KernelSpec` (measured from real NumPy proxy
execution) and a :class:`~repro.core.machine.Machine`, predict the time
the kernel would take on that machine's CPU sockets or GPUs.

Model
-----
GPU kernel time per launch::

    t = max(flops / (peak * ce), bytes / (bw * be)) + launch_overhead

CPU kernel time per launch uses the socket aggregate peaks, a
parallel-efficiency factor for the core count actually used, and a
cache-residency correction: when a kernel's working set fits in LLC the
bandwidth term uses an elevated cache bandwidth instead of DRAM (this
is what makes ParaDyn's small unfused loops fast on the CPU, §4.8).

Transfers use the machine's host-device link (h2d/d2h) or network.

The model is deliberately simple and fully inspectable; every factor is
either a published hardware number (:mod:`repro.core.machine`) or an
explicit efficiency recorded on the kernel itself.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.kernels import KernelSpec, KernelTrace, TransferSpec
from repro.core.machine import Machine
from repro.obs import metrics as _metrics
from repro.obs import validate as _validate


#: Effective bandwidth multiplier when a CPU kernel's working set is
#: LLC-resident.  ~4x DRAM is typical of measured L3 bandwidths.
CACHE_BW_MULTIPLIER = 4.0

#: Modeled per-loop dispatch overhead for threaded CPU execution (an
#: OpenMP fork/join or RAJA dispatch), per launch.
CPU_DISPATCH_OVERHEAD = 2e-6


@dataclass
class ExecutionReport:
    """Time breakdown for a trace executed on one machine side."""

    machine: str
    side: str  # "cpu" or "gpu"
    kernel_time: float = 0.0
    launch_time: float = 0.0
    transfer_time: float = 0.0
    per_kernel: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.kernel_time + self.launch_time + self.transfer_time

    def merge(self, other: "ExecutionReport") -> None:
        if (self.machine, self.side) != (other.machine, other.side):
            raise ValueError("cannot merge reports from different targets")
        self.kernel_time += other.kernel_time
        self.launch_time += other.launch_time
        self.transfer_time += other.transfer_time
        for name, t in other.per_kernel.items():
            self.per_kernel[name] = self.per_kernel.get(name, 0.0) + t


class RooflineModel:
    """Predict kernel/trace execution times on a machine.

    Parameters
    ----------
    machine:
        Target node type from the catalog.
    cpu_parallel_efficiency:
        Fraction of linear speedup realized when using all node cores;
        represents NUMA and synchronization losses.
    """

    def __init__(
        self,
        machine: Machine,
        cpu_parallel_efficiency: float = 0.8,
        memo_size: int = 4096,
    ):
        if not (0.0 < cpu_parallel_efficiency <= 1.0):
            raise ValueError("cpu_parallel_efficiency out of (0,1]")
        if memo_size < 0:
            raise ValueError("memo_size must be >= 0")
        #: LRU memo of per-launch kernel times keyed on
        #: (side, pricing fingerprint, placement); pricing a trace of
        #: 10^5 repeated launches then costs ~unique-specs arithmetic.
        #: ``memo_size=0`` disables memoization (the per-launch
        #: reference path used by equivalence tests and benchmarks).
        #:
        #: Memo validity rests on two invariants: :class:`Machine` is a
        #: frozen dataclass (enforced below), and rebinding
        #: ``self.machine`` or ``self.cpu_parallel_efficiency`` clears
        #: the memo (enforced by the property setters) — so a memoized
        #: per-launch time can never outlive the rates it priced.
        self.memo_size = memo_size
        self._memo: "OrderedDict[Tuple, float]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.machine = machine
        self.cpu_parallel_efficiency = cpu_parallel_efficiency

    @property
    def machine(self) -> Machine:
        return self._machine

    @machine.setter
    def machine(self, machine: Machine) -> None:
        params = getattr(type(machine), "__dataclass_params__", None)
        if params is None or not params.frozen:
            raise TypeError(
                "RooflineModel requires an immutable (frozen dataclass) "
                f"machine; got {type(machine).__name__}"
            )
        self._machine = machine
        self._memo.clear()

    @property
    def cpu_parallel_efficiency(self) -> float:
        return self._cpu_parallel_efficiency

    @cpu_parallel_efficiency.setter
    def cpu_parallel_efficiency(self, value: float) -> None:
        if not (0.0 < value <= 1.0):
            raise ValueError("cpu_parallel_efficiency out of (0,1]")
        self._cpu_parallel_efficiency = value
        self._memo.clear()

    def _memoized(self, key: Tuple, compute) -> float:
        if self.memo_size == 0:
            return compute()
        hit = self._memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            self._memo.move_to_end(key)
            return hit
        self.memo_misses += 1
        value = compute()
        self._memo[key] = value
        if len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)
        return value

    def clear_memo(self) -> None:
        self._memo.clear()
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    # single-kernel times
    # ------------------------------------------------------------------

    def _gpu_per_launch(self, k: KernelSpec, gpus: int) -> float:
        gpu = self.machine.gpu
        peak = gpu.peak_flops if k.precision == "fp64" else gpu.peak_flops_sp
        ce = k.compute_efficiency
        if k.uses_shared_memory:
            # Tuned shared-memory kernels reach a modestly higher
            # fraction of peak (the paper's sw4lite kernels hit ~40%
            # of peak after the shared-memory rewrite).
            ce = min(1.0, ce * 1.35)
        t_compute = k.flops / (peak * gpus * ce)
        t_memory = k.bytes_total / (gpu.mem_bw * gpus * k.bandwidth_efficiency)
        return max(t_compute, t_memory)

    def gpu_kernel_time(self, k: KernelSpec, gpus: int = 1) -> float:
        """Time for *k* on *gpus* devices of this machine (per launch set)."""
        gpu = self.machine.gpu
        if gpu is None:
            raise ValueError(f"{self.machine.name} has no GPUs")
        if gpus < 1 or gpus > self.machine.gpus_per_node:
            raise ValueError(
                f"gpus={gpus} outside 1..{self.machine.gpus_per_node}"
            )
        per_launch = self._memoized(
            ("gpu", k.pricing_fingerprint, gpus),
            lambda: self._gpu_per_launch(k, gpus),
        )
        return k.launches * per_launch

    def gpu_launch_time(self, k: KernelSpec) -> float:
        gpu = self.machine.gpu
        if gpu is None:
            raise ValueError(f"{self.machine.name} has no GPUs")
        return k.launches * gpu.launch_overhead

    def cpu_kernel_time(
        self,
        k: KernelSpec,
        cores: Optional[int] = None,
        working_set_bytes: Optional[float] = None,
    ) -> float:
        """Time for *k* on the node's CPUs.

        ``cores`` defaults to all node cores.  When
        ``working_set_bytes`` is given and fits in aggregate LLC, the
        bandwidth term uses the cache-bandwidth multiplier — modeling
        the cache residency that favors many small CPU loops (§4.8).
        """
        total_cores = self.machine.total_cores
        if cores is None:
            cores = total_cores
        if cores < 1 or cores > total_cores:
            raise ValueError(f"cores={cores} outside 1..{total_cores}")

        def compute() -> float:
            frac = cores / total_cores
            eff = self.cpu_parallel_efficiency if cores > 1 else 1.0
            peak = self.machine.cpu_peak_flops * frac * eff
            if k.precision == "fp32":
                peak *= 2.0  # SIMD width doubles for fp32
            bw = self.machine.cpu_mem_bw * min(1.0, 2.0 * frac) * eff
            llc_total = self.machine.cpu.llc_bytes * self.machine.cpu_sockets
            if working_set_bytes is not None and working_set_bytes <= llc_total:
                bw *= CACHE_BW_MULTIPLIER
            t_compute = k.flops / (peak * k.compute_efficiency)
            t_memory = k.bytes_total / (bw * k.bandwidth_efficiency)
            return max(t_compute, t_memory)

        per_launch = self._memoized(
            ("cpu", k.pricing_fingerprint, cores, working_set_bytes), compute
        )
        return k.launches * (per_launch + CPU_DISPATCH_OVERHEAD)

    def transfer_time(self, t: TransferSpec) -> float:
        if t.direction == "net":
            net = self.machine.network
            return t.count * (net.latency + t.nbytes / net.injection_bw)
        link = self.machine.host_device_link
        if link is None:
            raise ValueError(f"{self.machine.name} has no host-device link")
        return t.count * link.transfer_time(t.nbytes)

    # ------------------------------------------------------------------
    # trace-level reports
    # ------------------------------------------------------------------

    def run_on_gpu(
        self, trace: KernelTrace, gpus: int = 1, compact: bool = False
    ) -> ExecutionReport:
        """Model an entire trace on the GPU side (kernels + transfers).

        ``compact=True`` prices ``trace.compacted()`` instead — the
        fast path for long repetitive traces; totals agree with the
        uncompacted pricing up to fp summation order (enforced at
        runtime under ``REPRO_OBS_VALIDATE``).
        """
        original = trace
        if compact:
            trace = trace.compacted()
        h0, m0 = self.memo_hits, self.memo_misses
        report = ExecutionReport(machine=self.machine.name, side="gpu")
        for k in trace.kernels:
            t = self.gpu_kernel_time(k, gpus=gpus)
            report.kernel_time += t
            report.launch_time += self.gpu_launch_time(k)
            report.per_kernel[k.name] = report.per_kernel.get(k.name, 0.0) + t
        for tr in trace.transfers:
            report.transfer_time += self.transfer_time(tr)
        self._account_pricing(h0, m0)
        if compact and _validate.validation_enabled():
            self._validate_compacted(original, report, "gpu", gpus=gpus)
        return report

    def run_on_cpu(
        self,
        trace: KernelTrace,
        cores: Optional[int] = None,
        working_set_bytes: Optional[float] = None,
        compact: bool = False,
    ) -> ExecutionReport:
        """Model an entire trace on the CPU side (net transfers only)."""
        original = trace
        if compact:
            trace = trace.compacted()
        h0, m0 = self.memo_hits, self.memo_misses
        report = ExecutionReport(machine=self.machine.name, side="cpu")
        for k in trace.kernels:
            t = self.cpu_kernel_time(
                k, cores=cores, working_set_bytes=working_set_bytes
            )
            report.kernel_time += t
            report.per_kernel[k.name] = report.per_kernel.get(k.name, 0.0) + t
        for tr in trace.transfers:
            if tr.direction == "net":
                report.transfer_time += self.transfer_time(tr)
        self._account_pricing(h0, m0)
        if compact and _validate.validation_enabled():
            self._validate_compacted(
                original, report, "cpu",
                cores=cores, working_set_bytes=working_set_bytes,
            )
        return report

    def _account_pricing(self, hits_before: int, misses_before: int) -> None:
        """Batch this pricing pass's memo hit/miss deltas into metrics."""
        _metrics.counter("roofline.traces_priced").add()
        dh = self.memo_hits - hits_before
        dm = self.memo_misses - misses_before
        if dh:
            _metrics.counter("roofline.memo.hits").add(dh)
        if dm:
            _metrics.counter("roofline.memo.misses").add(dm)

    def _validate_compacted(
        self, original: KernelTrace, report: ExecutionReport,
        side: str, **kwargs,
    ) -> None:
        """Compaction contract: compacted pricing matches per-launch.

        The reference twin is a fresh memo-disabled model pricing the
        uncompacted trace, so neither compaction nor memoization can
        mask a divergence in the other.
        """
        ref_model = RooflineModel(
            self.machine, self._cpu_parallel_efficiency, memo_size=0
        )
        if side == "gpu":
            ref = ref_model.run_on_gpu(original, compact=False, **kwargs)
        else:
            ref = ref_model.run_on_cpu(original, compact=False, **kwargs)
        _validate.check_allclose(
            f"roofline.compact.{side}",
            [report.kernel_time, report.launch_time, report.transfer_time],
            [ref.kernel_time, ref.launch_time, ref.transfer_time],
            rtol=1e-9, atol=0.0,
        )

    def speedup_gpu_over_cpu(
        self, trace: KernelTrace, gpus: Optional[int] = None
    ) -> float:
        """Node-level GPU/CPU speedup for a trace."""
        gpus = gpus if gpus is not None else self.machine.gpus_per_node
        cpu = self.run_on_cpu(trace)
        gpu = self.run_on_gpu(trace, gpus=gpus)
        if gpu.total == 0:
            return float("inf")
        return cpu.total / gpu.total


def allreduce_time(
    machine: Machine, nbytes: float, nodes: int, algorithm: str = "tree"
) -> float:
    """Model an MPI allreduce across *nodes* nodes.

    ``tree``: log2(P) rounds of latency + bandwidth;
    ``ring``: 2(P-1)/P bandwidth terms plus 2(P-1) latencies (better
    for large messages).
    """
    import math

    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if nodes == 1:
        return 0.0
    net = machine.network
    if algorithm == "tree":
        rounds = math.ceil(math.log2(nodes))
        return 2 * rounds * (net.latency + nbytes / net.injection_bw)
    if algorithm == "ring":
        steps = nodes - 1
        chunk = nbytes / nodes
        return 2 * steps * (net.latency + chunk / net.injection_bw)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def alltoall_time(machine: Machine, nbytes_per_pair: float, nodes: int) -> float:
    """Model an all-to-all (shuffle) phase across *nodes* nodes.

    Each node exchanges ``nbytes_per_pair`` with every other node,
    serialized through its injection port.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if nodes == 1:
        return 0.0
    net = machine.network
    per_node_bytes = nbytes_per_pair * (nodes - 1)
    return (nodes - 1) * net.latency + per_node_bytes / net.injection_bw
