"""Declarative graceful-degradation fallback chains.

A :class:`FallbackChain` is an ordered list of *rungs* — callables
that attempt the same request at decreasing fidelity / increasing
robustness.  Running the chain tries each rung in order; a rung that
trips a :class:`~repro.guard.errors.NumericalHealthError` (or a
deadline error) escalates to the next.  The chain records which rung
served every request (``served`` history plus
``guard.fallback.<chain>.served.<rung>`` counters), so a campaign can
account exactly how much of its answer came from degraded paths —
the detect-and-fall-back strategy the paper's hypre and MuMMI
sections describe (switch smoother, re-run at lower fidelity) instead
of abort.

Prebuilt chains mirror the escalations the iCoE teams actually used:

- :func:`amg_fallback_chain` — AMG (l1-Jacobi) → AMG with a stronger
  smoother → PCG with a Jacobi preconditioner → dense direct solve
  for small systems.
- :func:`bdf_fallback_chain` — BDF(2) → BDF(1) (order drop) → BDF(1)
  with a halved initial/minimum step → explicit RK rescue (no Newton,
  no linear solver to break down).
- :func:`guarded_md_step` — MD step → reject + forced neighbor
  rebuild + retry → reject + halved dt for the recovery step.

Solver modules are imported lazily inside the factories so the guard
package never participates in an import cycle with the subsystems it
guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.guard.errors import (
    BreakdownError,
    DeadlineExceededError,
    FallbackExhaustedError,
    NumericalHealthError,
    StagnationError,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: error types a rung may trip without aborting the whole chain
ESCALATABLE = (NumericalHealthError, DeadlineExceededError)


@dataclass
class FallbackRung:
    """One fidelity level: a name and the callable that attempts it."""

    name: str
    run: Callable[..., Any]


@dataclass
class FallbackOutcome:
    """What the chain did for one request."""

    value: Any
    rung: int
    rung_name: str
    #: the health errors tripped by the rungs that were escalated past
    trips: List[BaseException] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.rung > 0


class FallbackChain:
    """Ordered escalation over :class:`FallbackRung`\\ s."""

    def __init__(self, name: str,
                 rungs: Sequence[Tuple[str, Callable[..., Any]]] = ()):
        self.name = name
        self.rungs: List[FallbackRung] = [
            r if isinstance(r, FallbackRung) else FallbackRung(*r)
            for r in rungs
        ]
        #: rung name that served each request, in order
        self.served: List[str] = []

    def add(self, name: str, run: Callable[..., Any]) -> "FallbackChain":
        """Append a rung; returns self for declarative chaining."""
        self.rungs.append(FallbackRung(name, run))
        return self

    def __len__(self) -> int:
        return len(self.rungs)

    def run(self, *args: Any, **kwargs: Any) -> FallbackOutcome:
        """Serve one request, escalating on health errors.

        Exhaustion (every rung tripped) raises
        :class:`FallbackExhaustedError` carrying the per-rung errors —
        a chain is an explicit opt-in, so an exhausted one is always a
        hard failure regardless of guard mode.
        """
        if not self.rungs:
            raise ValueError(f"fallback chain {self.name!r} has no rungs")
        trips: List[BaseException] = []
        for i, rung in enumerate(self.rungs):
            with _trace.span("guard.fallback.rung", chain=self.name,
                             rung=rung.name, index=i):
                try:
                    value = rung.run(*args, **kwargs)
                except ESCALATABLE as exc:
                    trips.append(exc)
                    _metrics.counter(
                        f"guard.fallback.{self.name}.trips.{rung.name}"
                    ).add()
                    continue
            self.served.append(rung.name)
            _metrics.counter(
                f"guard.fallback.{self.name}.served.{rung.name}"
            ).add()
            if i > 0:
                _metrics.counter(
                    f"guard.fallback.{self.name}.degraded"
                ).add()
            return FallbackOutcome(value, i, rung.name, trips)
        _metrics.counter(f"guard.fallback.{self.name}.exhausted").add()
        raise FallbackExhaustedError(
            f"all {len(self.rungs)} rungs of chain {self.name!r} failed: "
            + "; ".join(f"{r.name}: {e}" for r, e in zip(self.rungs, trips)),
            where=self.name, errors=trips,
        )


# ---------------------------------------------------------------------------
# prebuilt chains
# ---------------------------------------------------------------------------


def _amg_rung(a, smoother: str, sweeps: int, tol: float, max_iter: int,
              where: str) -> Callable[[np.ndarray], np.ndarray]:
    """One AMG solve attempt with a residual-trend probe attached."""

    def run(b: np.ndarray) -> np.ndarray:
        from repro.guard.sentinels import HealthMonitor, ResidualTrendProbe
        from repro.solvers.boomeramg import BoomerAMG

        amg = BoomerAMG(smoother=smoother, pre_sweeps=sweeps,
                        post_sweeps=sweeps)
        amg.setup(a)
        session = amg.solve_session(
            b, tol=tol, max_iter=max_iter,
            health=HealthMonitor(where=where),
            probe=ResidualTrendProbe(where=where),
        )
        x, info = session.solve()
        if not info.converged:
            raise StagnationError(
                f"AMG ({smoother}, {sweeps} sweeps) unconverged after "
                f"{info.iterations} V-cycles "
                f"(reduction {info.reduction:.3e})",
                where=where,
                context={"iterations": info.iterations,
                         "reduction": info.reduction},
            )
        return x

    return run


def amg_fallback_chain(
    a,
    tol: float = 1e-8,
    max_iter: int = 100,
    direct_max_n: int = 4096,
) -> FallbackChain:
    """AMG → stronger smoother → PCG/Jacobi → dense direct (small n).

    Each rung carries its own sentinels; the chain's ``run(b)`` returns
    the solution vector via :class:`FallbackOutcome`.
    """
    from repro.solvers.csr import CsrMatrix

    a = a if isinstance(a, CsrMatrix) else CsrMatrix(a)

    def pcg_jacobi(b: np.ndarray) -> np.ndarray:
        from repro.guard.sentinels import HealthMonitor, ResidualTrendProbe
        from repro.solvers.krylov import PcgSolver

        inv_diag = 1.0 / a.diagonal()
        solver = PcgSolver(
            a, b, preconditioner=lambda r: inv_diag * r, tol=tol,
            max_iter=10 * max_iter,
            health=HealthMonitor(where="guard.amg_chain.pcg"),
            probe=ResidualTrendProbe(where="guard.amg_chain.pcg",
                                     window=50),
        )
        x, info = solver.solve()
        if not info.converged:
            raise StagnationError(
                f"PCG/Jacobi unconverged after {info.iterations} "
                "iterations", where="guard.amg_chain.pcg",
                context={"iterations": info.iterations},
            )
        return x

    def dense_direct(b: np.ndarray) -> np.ndarray:
        n = a.n_rows
        if n > direct_max_n:
            raise BreakdownError(
                f"system too large for the dense rescue ({n} > "
                f"{direct_max_n})", where="guard.amg_chain.direct",
                context={"n": n, "direct_max_n": direct_max_n},
            )
        if not np.all(np.isfinite(b)):
            raise BreakdownError(
                "right-hand side is non-finite; no rung can solve it",
                where="guard.amg_chain.direct",
            )
        return np.linalg.solve(a.toarray(), np.asarray(b, dtype=np.float64))

    chain = FallbackChain("amg")
    chain.add("amg-l1-jacobi",
              _amg_rung(a, "l1-jacobi", 1, tol, max_iter,
                        "guard.amg_chain.l1"))
    chain.add("amg-strong-smoother",
              _amg_rung(a, "weighted-jacobi", 3, tol, max_iter,
                        "guard.amg_chain.strong"))
    chain.add("pcg-jacobi", pcg_jacobi)
    chain.add("dense-direct", dense_direct)
    return chain


def bdf_fallback_chain(
    rhs,
    make_lin_solver,
    options=None,
    erk_rtol: Optional[float] = None,
    erk_atol: Optional[float] = None,
) -> FallbackChain:
    """BDF(2) → order drop → step halving → explicit RK rescue.

    The chain's ``run(t0, u0, t_end)`` returns ``(times, states)``
    shaped like :meth:`BdfIntegrator.integrate` output.
    """
    from dataclasses import replace as _dc_replace

    from repro.ode.bdf import BdfIntegrator, BdfOptions

    base = options if options is not None else BdfOptions()

    def bdf_rung(opts):
        def run(t0: float, u0: np.ndarray, t_end: float):
            return BdfIntegrator(rhs, make_lin_solver,
                                 options=opts).integrate(t0, u0, t_end)
        return run

    def erk_rescue(t0: float, u0: np.ndarray, t_end: float):
        from repro.guard.sentinels import HealthMonitor
        from repro.ode.erk import erk_integrate

        times, states = erk_integrate(
            rhs, t0, u0, t_end,
            rtol=erk_rtol if erk_rtol is not None else base.rtol,
            atol=erk_atol if erk_atol is not None else base.atol,
        )
        HealthMonitor(where="guard.bdf_chain.erk").check_array(
            states[-1], "ERK rescue state")
        # match BdfIntegrator's default output shape: the end state only
        return times[-1:], states[-1:]

    order_drop = _dc_replace(base, max_order=1)
    halved = _dc_replace(
        base, max_order=1,
        h0=None if base.h0 is None else base.h0 / 2.0,
        h_min=base.h_min / 2.0,
        max_steps=2 * base.max_steps,
        max_newton=base.max_newton + 2,
    )

    chain = FallbackChain("bdf")
    chain.add("bdf-2", bdf_rung(base))
    chain.add("bdf-order-drop", bdf_rung(order_drop))
    chain.add("bdf-step-halving", bdf_rung(halved))
    chain.add("erk-rescue", erk_rescue)
    return chain


def guarded_md_step(sim) -> FallbackOutcome:
    """One guarded MD step with rejection-based recovery.

    Rungs: (1) plain step; (2) reject — restore the pre-step state,
    force a neighbor-list rebuild, retry (a stale/corrupted pair list
    is the classic source of exploding forces); (3) reject and retake
    the step at half ``dt``.  The pre-step snapshot is shared across
    rungs, so a rejected step never leaks partial state.
    """
    pre = sim.checkpoint_state()

    def plain() -> int:
        sim.step()
        return sim.steps_taken

    def rebuild_retry() -> int:
        sim.restore_state(pre)
        sim.nlist.invalidate()
        _metrics.counter("guard.md.rejected_steps").add()
        _metrics.counter("md.neighbor.forced_rebuilds").add()
        sim.step()
        return sim.steps_taken

    def half_dt_retry() -> int:
        sim.restore_state(pre)
        sim.nlist.invalidate()
        _metrics.counter("guard.md.rejected_steps").add()
        dt = sim.integrator.dt
        sim.integrator.dt = dt / 2.0
        try:
            sim.step()
        finally:
            sim.integrator.dt = dt
        return sim.steps_taken

    chain = FallbackChain("md_step")
    chain.add("step", plain)
    chain.add("reject-rebuild", rebuild_retry)
    chain.add("reject-half-dt", half_dt_retry)
    return chain.run()
