"""Typed errors raised by the guard layer.

The sentinel/fallback machinery distinguishes *soft* numerical
failures — the detect-and-fall-back cases the paper's iCoE teams spent
their effort on (solvers that stagnate after a port, ion models going
non-physical, campaigns blowing their throughput budget) — from hard
faults (crashes), which PR 1's resilience layer already handles with
kill/retry/checkpoint.

Every error carries *where* it was detected and a small ``context``
dict (iteration number, residual norm, offending value, ...), so a
fallback chain or a test can assert on the trip without string
parsing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class GuardError(RuntimeError):
    """Base of every guard-layer error."""

    def __init__(self, message: str, where: str = "",
                 context: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.where = where
        self.context = dict(context or {})

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.where:
            base = f"[{self.where}] {base}"
        if self.context:
            extras = ", ".join(
                f"{k}={v!r}" for k, v in sorted(self.context.items())
            )
            base = f"{base} ({extras})"
        return base


class NumericalHealthError(GuardError):
    """A sentinel detected silent numerical trouble.

    Raised *instead of* looping to ``max_iter`` or emitting garbage:
    the typed subclasses tell a fallback chain what went wrong so it
    can pick the right escalation.
    """


class NonFiniteError(NumericalHealthError):
    """NaN or Inf appeared in live state (inputs, iterates, forces)."""


class OverflowHealthError(NumericalHealthError):
    """State is finite but beyond any physically plausible magnitude."""


class StagnationError(NumericalHealthError):
    """An iteration is no longer making progress (residual stall,
    repeated error-test failures, step-size underflow)."""


class DivergedError(NumericalHealthError):
    """An iteration is actively blowing up (residual growth beyond the
    divergence ratio, non-physical trajectory)."""


class BreakdownError(NumericalHealthError):
    """An algorithmic breakdown: ``p . Ap <= 0`` in CG (operator not
    SPD, or corrupted state), a zero Arnoldi subdiagonal with an
    unconverged residual, a singular Newton matrix."""


class DeadlineExceededError(GuardError):
    """A deadline expired before (or during) the guarded work."""


class FallbackExhaustedError(GuardError):
    """Every rung of a fallback chain tripped a health error.

    ``errors`` holds the per-rung trips in escalation order.
    """

    def __init__(self, message: str, where: str = "",
                 context: Optional[Dict[str, Any]] = None,
                 errors: Optional[list] = None):
        super().__init__(message, where=where, context=context)
        self.errors = list(errors or [])


class CircuitOpenError(GuardError):
    """A circuit breaker is open and strict mode forbids degrading."""
