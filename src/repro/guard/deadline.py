"""Deadline propagation, circuit breaking, and admission control.

The complement of the sentinels: under deadline pressure a campaign
should *shed* its least valuable work, not collapse.  Three pieces:

- :class:`Deadline` — an absolute time on whatever clock the caller
  runs (simulated seconds for the scheduler, cycle counts for the
  MuMMI campaign).  It propagates by value through call chains and
  answers ``remaining``/``expired``/``require``.
- :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine over a sliding failure count.  Consumers that will report
  back call :meth:`try_acquire_probe` before expensive work and
  :meth:`record_success`/:meth:`record_failure` after; an open
  breaker routes callers to their degraded rung (lower-fidelity
  surrogate, shed) until ``recovery_time`` has passed, then admits one
  probe request (half-open).  Pure queries — admission checks,
  dashboards — use the side-effect-free :meth:`peek`, which can never
  claim (and strand) the probe.
- :class:`AdmissionController` — a shed-or-admit decision per job at
  enqueue time: jobs that can no longer meet their deadline, or that
  arrive below the protected priority while the queue is saturated or
  the breaker is open, are shed.  Decisions are deterministic given
  the same event sequence, so chaos runs replay bit-for-bit.

Everything is checkpointable (the scheduler's validated fast/reference
twin-run snapshots controller state the same way it snapshots the
fault injector), and every shed/trip lands in ``guard.*`` counters.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.guard.config import guard_strict
from repro.guard.errors import CircuitOpenError, DeadlineExceededError
from repro.obs import metrics as _metrics


class Deadline:
    """An absolute deadline on the caller's clock."""

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    @classmethod
    def after(cls, budget: float, now: float = 0.0) -> "Deadline":
        """Deadline *budget* clock units from *now*."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        return cls(now + budget)

    def remaining(self, now: float) -> float:
        return self.at - now

    def expired(self, now: float) -> bool:
        return now >= self.at

    def require(self, now: float, where: str = "deadline") -> None:
        """Raise :class:`DeadlineExceededError` when already expired."""
        if self.expired(now):
            _metrics.counter("guard.deadline.exceeded").add()
            raise DeadlineExceededError(
                f"deadline {self.at:.6g} expired at {now:.6g}",
                where=where, context={"deadline": self.at, "now": now},
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(at={self.at!r})"


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures.

    State machine:

    - **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    - **open** — requests are refused (callers degrade) until
      ``recovery_time`` clock units after the trip.
    - **half-open** — one probe request is admitted; success closes
      the breaker, failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_time: float = 1.0, name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.name = name
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def peek(self, now: float) -> bool:
        """Side-effect-free query: is full-fidelity work flowing?

        True only in the closed state.  An open breaker — even one
        whose ``recovery_time`` has elapsed — still answers False: the
        half-open probe slot is reserved for callers that will report
        back via :meth:`record_success`/:meth:`record_failure`, and a
        query must never consume it (the pre-split
        ``AdmissionController.admit`` did exactly that, stranding the
        breaker half-open with the probe handed to a shed check that
        reports nothing).  Pure: calling ``peek`` any number of times
        leaves :meth:`checkpoint_state` bit-identical.
        """
        del now  # kept for signature symmetry with try_acquire_probe
        return self.state == "closed"

    def try_acquire_probe(self, now: float) -> bool:
        """May the caller do the protected (full-fidelity) work?

        For callers that WILL report the outcome back: a ``True``
        return from an open-past-recovery breaker claims the single
        half-open probe, and the breaker stays half-open (everyone
        else degraded) until the caller's
        :meth:`record_success`/:meth:`record_failure` resolves it.
        Pure queries (admission checks, dashboards) must use
        :meth:`peek` instead.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at >= self.recovery_time:
                self.state = "half-open"
                return True
            return False
        # half-open: the single probe is in flight; further requests
        # stay degraded until record_success/record_failure resolves it
        return False

    #: legacy alias — existing report-back call sites predate the
    #: peek/acquire split and keep the acquire semantics
    allow = try_acquire_probe

    def require(self, now: float) -> None:
        """Strict-mode gate: raise instead of silently degrading."""
        if not self.try_acquire_probe(now) and guard_strict():
            raise CircuitOpenError(
                f"circuit {self.name!r} open", where=self.name,
                context={"now": now, "opened_at": self.opened_at},
            )

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state != "closed":
            self.state = "closed"
            _metrics.counter(f"guard.breaker.{self.name}.closed").add()

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self.opened_at = now
            self.trips += 1
            _metrics.counter(f"guard.breaker.{self.name}.trips").add()

    # -- checkpoint protocol (twin-run validation, campaign restarts) --

    def checkpoint_state(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "trips": self.trips,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.state = state["state"]
        self.consecutive_failures = state["consecutive_failures"]
        self.opened_at = state["opened_at"]
        self.trips = state["trips"]


class AdmissionController:
    """Deadline- and pressure-aware shed-or-admit decisions.

    A job is **shed** (refused at enqueue time) when any of:

    - its deadline can no longer be met even by starting immediately
      (``now + service > deadline``);
    - its deadline cannot be met behind the current backlog, estimated
      as ``queue_len / n_gpus`` service slots of queueing delay;
    - the queue is saturated (``queue_len >= max_queue``) and the
      job's priority is below ``protect_priority``;
    - the attached breaker is open (fault storm) and the job's
      priority is below ``protect_priority``.

    Higher ``priority`` values are more important.  All decisions are
    pure functions of the observable state passed in, so a replayed
    event sequence sheds identically.
    """

    def __init__(
        self,
        max_queue: Optional[int] = None,
        protect_priority: int = 0,
        breaker: Optional[CircuitBreaker] = None,
        backlog_estimate: bool = True,
        shed_log_cap: int = 4096,
    ):
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if shed_log_cap < 1:
            raise ValueError("shed_log_cap must be >= 1")
        self.max_queue = max_queue
        self.protect_priority = protect_priority
        self.breaker = breaker
        self.backlog_estimate = backlog_estimate
        self.shed_count = 0
        self.admitted = 0
        self.shed_log_cap = shed_log_cap
        #: ``(job_id, reason)`` per shed decision, in decision order —
        #: the replay-verification surface: two runs of the same event
        #: sequence must produce identical logs.  Bounded: under
        #: sustained overload an unbounded log is itself an
        #: availability bug (the controller that protects the machine
        #: from memory pressure must not be the thing that OOMs it),
        #: so the deque rotates and ``shed_log_dropped`` counts the
        #: decisions that aged out of the window.
        self.shed_log: Deque[Tuple[Optional[int], str]] = deque(
            maxlen=shed_log_cap
        )
        #: shed decisions rotated out of the bounded log
        self.shed_log_dropped = 0

    def record_failure(self, now: float, job=None) -> None:
        del job  # single-tenant: every failure feeds the one breaker
        if self.breaker is not None:
            self.breaker.record_failure(now)

    def record_success(self, now: float, job=None) -> None:
        del job
        if self.breaker is not None:
            self.breaker.record_success(now)

    def decide(self, job, now: float, queue_len: int, n_running: int,
               n_gpus: int) -> Optional[str]:
        """Classify *job*: the shed reason, or ``None`` to admit.

        Pure — no counters, no accounting, and (via
        :meth:`CircuitBreaker.peek`) no breaker mutation, so a replayed
        event sequence classifies identically and a query can never
        strand the breaker's half-open probe.
        """
        deadline = getattr(job, "deadline", None)
        priority = getattr(job, "priority", 0)
        if deadline is not None:
            if now + job.service > deadline:
                return "deadline_unmeetable"
            if self.backlog_estimate and queue_len > 0:
                # every queued job ahead of this one occupies ~one
                # service slot across the n_gpus-wide machine
                est_wait = (queue_len / max(n_gpus, 1)) * job.service
                if now + est_wait + job.service > deadline:
                    return "deadline_backlog"
        if priority < self.protect_priority:
            if self.max_queue is not None and queue_len >= self.max_queue:
                return "queue_saturated"
            if self.breaker is not None and not self.breaker.peek(now):
                return "breaker_open"
        return None

    def note_shed(self, job, reason: str) -> None:
        """Account one shed decision (log rotation + counters).

        Factored out of :meth:`admit` so the tenant registry can charge
        a fair-share or brownout shed to the owning tenant's controller
        through the exact same bookkeeping path.
        """
        self.shed_count += 1
        if len(self.shed_log) == self.shed_log_cap:
            self.shed_log_dropped += 1
            _metrics.counter("guard.shed_log.dropped").add()
        self.shed_log.append((getattr(job, "job_id", None), reason))
        _metrics.counter("guard.shed").add()
        _metrics.counter(f"guard.shed.{reason}").add()

    def admit(self, job, now: float, queue_len: int, n_running: int,
              n_gpus: int) -> bool:
        """Admit *job* into the queue, or shed it (False)."""
        shed_reason = self.decide(job, now, queue_len, n_running, n_gpus)
        if shed_reason is None:
            self.admitted += 1
            return True
        self.note_shed(job, shed_reason)
        return False

    # -- checkpoint protocol -------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        return {
            "shed_count": self.shed_count,
            "admitted": self.admitted,
            "shed_log": list(self.shed_log),
            "shed_log_dropped": self.shed_log_dropped,
            "breaker": (
                None if self.breaker is None
                else self.breaker.checkpoint_state()
            ),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.shed_count = state["shed_count"]
        self.admitted = state["admitted"]
        self.shed_log = deque(
            ((j, r) for j, r in state.get("shed_log", [])),
            maxlen=self.shed_log_cap,
        )
        self.shed_log_dropped = state.get("shed_log_dropped", 0)
        if self.breaker is not None and state["breaker"] is not None:
            self.breaker.restore_state(state["breaker"])
