"""Guard-layer mode switch (the ``REPRO_GUARD`` environment variable).

Mirrors the :mod:`repro.obs.validate` idiom: the environment variable
is read on every call so tests and long-lived processes can flip the
mode freely, with the string normalization memoized on the raw value.
All callers are per-solver-run or per-iteration in already-expensive
loops — never per-element.

Modes:

- unset / ``0`` / ``off`` — guards disabled (production default).
  Every instrumented path takes its pre-guard code path: constructors
  hand out ``None`` monitors and step loops pay one ``is None`` test.
- ``on`` / ``record`` — sentinels active: numerical-health checks run,
  trips are counted under ``guard.sentinel.*`` and raise typed
  :class:`~repro.guard.errors.NumericalHealthError`\\ s so fallback
  chains can catch and escalate.
- ``1`` / ``strict`` — as ``on``, and additionally exhausted fallback
  chains and tripped circuit breakers raise instead of degrading
  silently (:func:`guard_strict` gates those sites).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable selecting the guard mode.
GUARD_ENV = "REPRO_GUARD"

_OFF_VALUES = ("", "0", "off", "false", "no", "none")
_ON_VALUES = ("on", "record", "warn")

#: memo of the last (raw env value, parsed mode) pair
_parsed: tuple = ("", "off")


def guard_mode() -> str:
    """Current mode: ``"off"``, ``"on"``, or ``"strict"``."""
    global _parsed
    value = os.environ.get(GUARD_ENV, "")
    cached = _parsed
    if value == cached[0]:
        return cached[1]
    raw = value.strip().lower()
    if raw in _OFF_VALUES:
        mode = "off"
    elif raw in _ON_VALUES:
        mode = "on"
    else:
        mode = "strict"
    _parsed = (value, mode)
    return mode


def guard_enabled() -> bool:
    """Are the numerical-health sentinels active?"""
    return guard_mode() != "off"


def guard_strict() -> bool:
    """Should exhausted chains / open breakers raise?"""
    return guard_mode() == "strict"


@contextmanager
def guard_override(mode: str) -> Iterator[None]:
    """Temporarily force the guard mode (tests and chaos harnesses)."""
    if mode not in ("off", "on", "strict"):
        raise ValueError("mode must be 'off', 'on', or 'strict'")
    old = os.environ.get(GUARD_ENV)
    os.environ[GUARD_ENV] = mode
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(GUARD_ENV, None)
        else:
            os.environ[GUARD_ENV] = old
