"""Numerical health sentinels: cheap detectors for silent trouble.

Three detector shapes cover everything the instrumented subsystems
need:

- :class:`HealthMonitor` — point-in-time NaN/Inf/overflow checks on
  arrays and scalars (solver inputs, iterates, forces, voltages).
- :class:`ResidualTrendProbe` — watches a residual-norm series for
  stagnation (insufficient reduction over a window) and divergence
  (growth beyond a ratio of the best norm seen).  Hooked into PCG and
  the stand-alone AMG iteration.
- :class:`WrmsTrendProbe` — watches a BDF integrator's local-error
  WRMS series: repeated error-test failures and step-size collapse
  mean the integrator is stuck, not converging.

Every trip is counted (``guard.sentinel.trips`` plus a per-kind
counter) before the typed :class:`NumericalHealthError` is raised, so
a chaos run can be audited from the metrics snapshot alone.  The
monitors only exist when the guard mode is on — disabled code paths
never construct one, so the disabled cost is a single ``is None``
test at each instrumented site.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

import numpy as np

from repro.guard.config import guard_enabled
from repro.guard.errors import (
    DivergedError,
    NonFiniteError,
    NumericalHealthError,
    OverflowHealthError,
    StagnationError,
)
from repro.obs import metrics as _metrics


def _trip(kind: str, where: str) -> None:
    _metrics.counter("guard.sentinel.trips").add()
    _metrics.counter(f"guard.sentinel.trips.{kind}").add()
    _metrics.counter(f"guard.sentinel.trips_at.{where}").add()


class HealthMonitor:
    """Point-in-time NaN/Inf/overflow sentinel.

    ``magnitude_bound`` is the largest plausible magnitude for the
    state being watched; anything beyond it (while still finite) trips
    :class:`OverflowHealthError` — the "ion model went non-physical"
    case, where values overflow *eventually* but garbage shows up as
    absurd magnitudes first.
    """

    __slots__ = ("where", "magnitude_bound", "checks")

    def __init__(self, where: str = "guard",
                 magnitude_bound: float = 1e100):
        if magnitude_bound <= 0:
            raise ValueError("magnitude_bound must be positive")
        self.where = where
        self.magnitude_bound = magnitude_bound
        self.checks = 0

    def check_array(self, arr: np.ndarray, what: str = "state",
                    context: Optional[Dict[str, Any]] = None) -> None:
        """Raise if *arr* contains NaN/Inf or implausible magnitudes."""
        self.checks += 1
        arr = np.asarray(arr)
        if arr.size == 0:
            return
        peak = float(np.max(np.abs(arr)))
        if not np.isfinite(peak):
            # distinguish NaN (max propagates NaN) from Inf
            n_bad = int(np.count_nonzero(~np.isfinite(arr)))
            _trip("nonfinite", self.where)
            raise NonFiniteError(
                f"non-finite values in {what}", where=self.where,
                context={"what": what, "n_bad": n_bad, **(context or {})},
            )
        if peak > self.magnitude_bound:
            _trip("overflow", self.where)
            raise OverflowHealthError(
                f"{what} magnitude {peak:.3e} exceeds plausible bound "
                f"{self.magnitude_bound:.3e}",
                where=self.where,
                context={"what": what, "peak": peak, **(context or {})},
            )

    def check_value(self, value: float, what: str = "value",
                    context: Optional[Dict[str, Any]] = None) -> None:
        """Scalar version of :meth:`check_array`."""
        self.checks += 1
        v = float(value)
        if not np.isfinite(v):
            _trip("nonfinite", self.where)
            raise NonFiniteError(
                f"non-finite {what}: {v!r}", where=self.where,
                context={"what": what, "value": v, **(context or {})},
            )
        if abs(v) > self.magnitude_bound:
            _trip("overflow", self.where)
            raise OverflowHealthError(
                f"{what} magnitude {abs(v):.3e} exceeds plausible bound "
                f"{self.magnitude_bound:.3e}",
                where=self.where,
                context={"what": what, "value": v, **(context or {})},
            )


def default_monitor(where: str,
                    magnitude_bound: float = 1e100
                    ) -> Optional[HealthMonitor]:
    """A :class:`HealthMonitor` when guards are on, else ``None``.

    The construction-time decision is what keeps the disabled path at
    pre-guard cost: instrumented loops test ``monitor is None`` and
    nothing else.
    """
    if not guard_enabled():
        return None
    return HealthMonitor(where=where, magnitude_bound=magnitude_bound)


class ResidualTrendProbe:
    """Stagnation/divergence detector over a residual-norm series.

    - **divergence**: the latest norm exceeds ``diverge_ratio`` times
      the best (smallest) norm seen — the iteration is blowing up.
    - **stagnation**: across the last ``window`` observations the
      total reduction is worse than ``stall_ratio ** window`` — the
      iteration is treading water (a smoother that stopped smoothing
      after a port, per the hypre retargeting experience).

    Non-finite norms trip :class:`NonFiniteError` immediately.
    """

    __slots__ = ("where", "window", "stall_ratio", "diverge_ratio",
                 "history", "best", "observations")

    def __init__(self, where: str = "solver", window: int = 10,
                 stall_ratio: float = 0.99, diverge_ratio: float = 1e4):
        if window < 2:
            raise ValueError("window must be >= 2")
        if not (0 < stall_ratio <= 1):
            raise ValueError("stall_ratio in (0, 1]")
        if diverge_ratio <= 1:
            raise ValueError("diverge_ratio must exceed 1")
        self.where = where
        self.window = window
        self.stall_ratio = stall_ratio
        self.diverge_ratio = diverge_ratio
        self.history: Deque[float] = deque(maxlen=window + 1)
        self.best = float("inf")
        self.observations = 0

    def observe(self, rnorm: float, iteration: int = -1) -> None:
        """Feed one residual norm; raise on an unhealthy trend."""
        self.observations += 1
        r = float(rnorm)
        if not np.isfinite(r):
            _trip("nonfinite", self.where)
            raise NonFiniteError(
                "non-finite residual norm", where=self.where,
                context={"iteration": iteration, "rnorm": r},
            )
        if r < self.best:
            self.best = r
        elif self.best > 0 and r > self.diverge_ratio * self.best:
            _trip("divergence", self.where)
            raise DivergedError(
                f"residual {r:.3e} grew {r / self.best:.1e}x beyond the "
                f"best norm {self.best:.3e}",
                where=self.where,
                context={"iteration": iteration, "rnorm": r,
                         "best": self.best},
            )
        self.history.append(r)
        if len(self.history) == self.history.maxlen:
            oldest = self.history[0]
            required = oldest * self.stall_ratio ** self.window
            if oldest > 0 and r > required:
                _trip("stagnation", self.where)
                raise StagnationError(
                    f"residual stalled: {oldest:.3e} -> {r:.3e} over "
                    f"{self.window} iterations "
                    f"(needed <= {required:.3e})",
                    where=self.where,
                    context={"iteration": iteration, "rnorm": r,
                             "window_start": oldest},
                )


class WrmsTrendProbe:
    """Stuck-integrator detector for WRMS-controlled steppers.

    BDF accepts a step when the local-error WRMS norm is <= 1; a
    healthy integrator fails that test occasionally, an unhealthy one
    fails it over and over while the step size collapses.  The probe
    trips :class:`StagnationError` after ``max_consecutive_rejects``
    rejected steps in a row, :class:`DivergedError` when the error
    estimate keeps exploding, and :class:`NonFiniteError` on NaN/Inf.

    The default reject budget leaves room for a healthy startup
    transient: with the heuristic initial step and a 0.2x shrink
    floor, an integrator can legitimately reject ~10 steps in a row
    while walking ``h`` down to the accuracy-limited value, and only a
    genuinely stuck one rejects tens of times.
    """

    __slots__ = ("where", "max_consecutive_rejects", "diverge_err",
                 "consecutive_rejects", "observations")

    def __init__(self, where: str = "ode",
                 max_consecutive_rejects: int = 30,
                 diverge_err: float = 1e6):
        if max_consecutive_rejects < 1:
            raise ValueError("max_consecutive_rejects must be >= 1")
        if diverge_err <= 1:
            raise ValueError("diverge_err must exceed 1")
        self.where = where
        self.max_consecutive_rejects = max_consecutive_rejects
        self.diverge_err = diverge_err
        self.consecutive_rejects = 0
        self.observations = 0

    def observe(self, err: float, h: float, t: float,
                accepted: bool) -> None:
        """Feed one error-test outcome; raise on an unhealthy trend."""
        self.observations += 1
        e = float(err)
        if not np.isfinite(e):
            _trip("nonfinite", self.where)
            raise NonFiniteError(
                "non-finite local-error estimate", where=self.where,
                context={"t": t, "h": h},
            )
        if accepted:
            self.consecutive_rejects = 0
            return
        if e > self.diverge_err and self.consecutive_rejects >= 1:
            # a single huge first-step error is a normal startup
            # transient (the controller just cuts h); repeated ones
            # mean the estimate is genuinely exploding
            _trip("divergence", self.where)
            raise DivergedError(
                f"local-error estimate {e:.3e} exploded", where=self.where,
                context={"t": t, "h": h, "err": e},
            )
        self.consecutive_rejects += 1
        if self.consecutive_rejects >= self.max_consecutive_rejects:
            _trip("stagnation", self.where)
            raise StagnationError(
                f"{self.consecutive_rejects} consecutive error-test "
                f"failures (h={h:.3e} at t={t:.6g})",
                where=self.where,
                context={"t": t, "h": h, "err": e,
                         "rejects": self.consecutive_rejects},
            )
