"""Numerical health sentinels, fallback chains, deadline shedding.

The *soft*-failure half of the reproduction's robustness story (the
hard-fault half — kill/retry/checkpoint — lives in
:mod:`repro.resilience`).  The paper's iCoE teams spent much of their
port effort on failures that never crash: solvers that stagnate after
retargeting, ion models drifting non-physical, campaign cycles blowing
their throughput budget.  This package packages the same
detect-and-degrade strategy:

- :mod:`repro.guard.sentinels` — cheap NaN/Inf/overflow and
  stagnation/divergence detectors raising typed
  :class:`NumericalHealthError`\\ s instead of silently looping.
- :mod:`repro.guard.fallback` — declarative :class:`FallbackChain`
  escalation (AMG → stronger smoother → PCG/Jacobi → dense direct;
  BDF → order drop → step halving → ERK rescue; MD → step rejection +
  neighbor rebuild), recording which rung served each request.
- :mod:`repro.guard.deadline` — :class:`Deadline` propagation,
  :class:`CircuitBreaker`, and the :class:`AdmissionController` that
  lets a campaign under a fault storm shed its lowest-priority
  candidates instead of collapsing.

Guard mode comes from ``REPRO_GUARD`` (``off`` default / ``on`` /
``strict``); with guards off every instrumented path is bit-exact
with its pre-guard behavior and pays one ``is None`` test.
"""

from __future__ import annotations

from repro.guard.config import (
    GUARD_ENV,
    guard_enabled,
    guard_mode,
    guard_override,
    guard_strict,
)
from repro.guard.deadline import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
)
from repro.guard.errors import (
    BreakdownError,
    CircuitOpenError,
    DeadlineExceededError,
    DivergedError,
    FallbackExhaustedError,
    GuardError,
    NonFiniteError,
    NumericalHealthError,
    OverflowHealthError,
    StagnationError,
)
from repro.guard.fallback import (
    FallbackChain,
    FallbackOutcome,
    FallbackRung,
    amg_fallback_chain,
    bdf_fallback_chain,
    guarded_md_step,
)
from repro.guard.sentinels import (
    HealthMonitor,
    ResidualTrendProbe,
    WrmsTrendProbe,
    default_monitor,
)

__all__ = [
    "GUARD_ENV",
    "guard_enabled",
    "guard_mode",
    "guard_override",
    "guard_strict",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "BreakdownError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DivergedError",
    "FallbackExhaustedError",
    "GuardError",
    "NonFiniteError",
    "NumericalHealthError",
    "OverflowHealthError",
    "StagnationError",
    "FallbackChain",
    "FallbackOutcome",
    "FallbackRung",
    "amg_fallback_chain",
    "bdf_fallback_chain",
    "guarded_md_step",
    "HealthMonitor",
    "ResidualTrendProbe",
    "WrmsTrendProbe",
    "default_monitor",
]
