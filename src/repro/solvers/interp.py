"""Classical direct interpolation for AMG.

Builds the prolongation operator P from a C/F splitting: C points
inject; each F point interpolates from its strongly-connected C
neighbors with the classical direct-interpolation formula

    w_ij = - (a_ij / a_ii) * (sum_k a_ik, k off-diagonal)
                           / (sum_j a_ij, j strong C neighbors)

which preserves constants for M-matrices.  F points with no strong C
neighbor fall back to zero rows (they are smoothed-only points; the
V-cycle handles them through relaxation).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.solvers.coarsen import C_POINT


def direct_interpolation(
    a, s: sp.csr_matrix, labels: np.ndarray
) -> sp.csr_matrix:
    """Return P (n_fine x n_coarse) for matrix *a*, strength *s*, *labels*."""
    a = sp.csr_matrix(a)
    s = sp.csr_matrix(s)
    n = a.shape[0]
    if labels.shape[0] != n:
        raise ValueError("labels length must match matrix size")
    coarse_index = -np.ones(n, dtype=np.int64)
    c_pts = np.flatnonzero(labels == C_POINT)
    coarse_index[c_pts] = np.arange(c_pts.size)
    n_coarse = c_pts.size
    if n_coarse == 0:
        raise ValueError("no coarse points; cannot build interpolation")

    rows, cols, vals = [], [], []
    # C points inject.
    rows.extend(c_pts.tolist())
    cols.extend(coarse_index[c_pts].tolist())
    vals.extend([1.0] * c_pts.size)

    diag = a.diagonal()
    for i in np.flatnonzero(labels != C_POINT):
        a_row = slice(a.indptr[i], a.indptr[i + 1])
        a_cols = a.indices[a_row]
        a_vals = a.data[a_row]
        off_mask = a_cols != i
        # strong C neighbors of i
        s_cols = set(s.indices[s.indptr[i]:s.indptr[i + 1]].tolist())
        strong_c = [
            (j, v)
            for j, v in zip(a_cols[off_mask], a_vals[off_mask])
            if j in s_cols and labels[j] == C_POINT
        ]
        if not strong_c or diag[i] == 0:
            continue  # relaxation-only point
        sum_all = float(a_vals[off_mask].sum())
        sum_strong = float(sum(v for _, v in strong_c))
        if sum_strong == 0:
            continue
        alpha = sum_all / sum_strong
        for j, v in strong_c:
            rows.append(i)
            cols.append(coarse_index[j])
            vals.append(-alpha * v / diag[i])
    p = sp.csr_matrix((vals, (rows, cols)), shape=(n, n_coarse))
    return p


def interpolation_quality(p: sp.csr_matrix) -> Tuple[float, float]:
    """(max row sum error vs 1, fraction of zero rows) diagnostics."""
    rowsum = np.asarray(p.sum(axis=1)).ravel()
    nonzero_rows = np.asarray(p.getnnz(axis=1)).ravel() > 0
    if nonzero_rows.any():
        err = float(np.abs(rowsum[nonzero_rows] - 1.0).max())
    else:
        err = float("inf")
    zero_frac = 1.0 - nonzero_rows.mean()
    return err, float(zero_frac)
