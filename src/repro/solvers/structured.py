"""Structured-solver substrate: Boxes, BoxLoops, and a PFMG-style cycle.

hypre's structured solvers "exploit problem structure and are
abstracted with macros called BoxLoops.  These macros were completely
restructured to allow ports of CUDA, OpenMP 4.5, RAJA and Kokkos into
the isolated BoxLoops" (§4.10.1).  Here:

- :class:`Box` — an integer index box (also reused by the AMR layer).
- :class:`BoxLoop` — the macro: apply a stencil body over a box through
  the mini-RAJA backend of your choice; the *same body* runs on every
  backend, and device launches are recorded for the roofline model.
- :class:`StructGrid` + :func:`pfmg_solve` — a 2D structured Poisson
  geometric-multigrid solver whose smoothing/residual/transfer kernels
  are all expressed as BoxLoops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.forall import ExecPolicy, ExecutionContext, Forall


@dataclass(frozen=True)
class Box:
    """Closed-open integer box ``[lo, hi)`` in up to 3 dimensions."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi rank mismatch")
        if not self.lo:
            raise ValueError("box must have at least one dimension")
        if any(h < l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"inverted box {self.lo}..{self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def contains(self, other: "Box") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def intersect(self, other: "Box") -> Optional["Box"]:
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def grow(self, width: int) -> "Box":
        """Expand by *width* cells on every side (ghost regions)."""
        return Box(
            tuple(l - width for l in self.lo),
            tuple(h + width for h in self.hi),
        )

    def coarsen(self, ratio: int) -> "Box":
        """Integer-coarsen (floor division), AMR-style."""
        if ratio < 1:
            raise ValueError("ratio must be >= 1")
        return Box(
            tuple(l // ratio for l in self.lo),
            tuple(-(-h // ratio) for h in self.hi),
        )

    def refine(self, ratio: int) -> "Box":
        if ratio < 1:
            raise ValueError("ratio must be >= 1")
        return Box(
            tuple(l * ratio for l in self.lo),
            tuple(h * ratio for h in self.hi),
        )

    def slices(self, offset: Tuple[int, ...] = None) -> Tuple[slice, ...]:
        """NumPy slices for this box relative to *offset* (default lo=0)."""
        offset = offset or (0,) * self.ndim
        return tuple(
            slice(l - o, h - o)
            for l, h, o in zip(self.lo, self.hi, offset)
        )


class BoxLoop:
    """The restructured hypre BoxLoop macro.

    A BoxLoop body receives per-dimension index arrays (box-relative)
    and reads/writes whole fields; the backend is chosen at
    construction.  Stencil authors write the body once.
    """

    def __init__(self, ctx: Optional[ExecutionContext] = None,
                 policy: ExecPolicy = ExecPolicy.SIMD):
        self.ctx = ctx if ctx is not None else ExecutionContext()
        self.forall = Forall(self.ctx, policy)

    @property
    def policy(self) -> ExecPolicy:
        return self.forall.policy

    def run(
        self,
        name: str,
        box: Box,
        body: Callable[..., None],
        flops_per_point: float = 0.0,
        bytes_per_point: float = 0.0,
        tuned: bool = False,
    ) -> None:
        self.forall.kernel(
            name,
            box.shape,
            body,
            flops_per_elem=flops_per_point,
            bytes_per_elem=bytes_per_point,
            tuned=tuned,
        )


class StructGrid:
    """2D cell-centered structured grid with one ghost layer.

    Fields are ``(nx+2, ny+2)`` arrays; the interior box is
    ``[1, nx+1) x [1, ny+1)``.  Homogeneous Dirichlet values live in the
    ghost layer (zeros).
    """

    def __init__(self, nx: int, ny: Optional[int] = None, h: float = 1.0):
        if nx < 1:
            raise ValueError("nx must be >= 1")
        self.nx = nx
        self.ny = nx if ny is None else ny
        if self.ny < 1:
            raise ValueError("ny must be >= 1")
        self.h = h
        self.interior = Box((1, 1), (self.nx + 1, self.ny + 1))

    def new_field(self, fill: float = 0.0) -> np.ndarray:
        return np.full((self.nx + 2, self.ny + 2), fill, dtype=np.float64)

    def apply_laplacian(
        self, loop: BoxLoop, u: np.ndarray, out: np.ndarray
    ) -> None:
        """out = A u with the standard 5-point operator (scaled by 1/h^2)."""
        inv_h2 = 1.0 / (self.h * self.h)

        def body(i, j):
            ii, jj = i + 1, j + 1  # box-relative -> field index
            out[ii, jj] = inv_h2 * (
                4.0 * u[ii, jj]
                - u[ii - 1, jj] - u[ii + 1, jj]
                - u[ii, jj - 1] - u[ii, jj + 1]
            )

        loop.run("struct-laplacian", self.interior, body,
                 flops_per_point=6, bytes_per_point=6 * 8)

    def residual(
        self, loop: BoxLoop, b: np.ndarray, u: np.ndarray, r: np.ndarray
    ) -> None:
        inv_h2 = 1.0 / (self.h * self.h)

        def body(i, j):
            ii, jj = i + 1, j + 1
            r[ii, jj] = b[ii, jj] - inv_h2 * (
                4.0 * u[ii, jj]
                - u[ii - 1, jj] - u[ii + 1, jj]
                - u[ii, jj - 1] - u[ii, jj + 1]
            )

        loop.run("struct-residual", self.interior, body,
                 flops_per_point=7, bytes_per_point=7 * 8)

    def jacobi_sweep(
        self, loop: BoxLoop, b: np.ndarray, u: np.ndarray,
        weight: float = 0.8,
    ) -> np.ndarray:
        """One weighted-Jacobi sweep; returns the new field."""
        h2 = self.h * self.h
        unew = u.copy()

        def body(i, j):
            ii, jj = i + 1, j + 1
            gs = 0.25 * (
                u[ii - 1, jj] + u[ii + 1, jj]
                + u[ii, jj - 1] + u[ii, jj + 1]
                + h2 * b[ii, jj]
            )
            unew[ii, jj] = (1 - weight) * u[ii, jj] + weight * gs

        loop.run("struct-jacobi", self.interior, body,
                 flops_per_point=9, bytes_per_point=7 * 8)
        return unew


def _restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Vertex-centered full-weighting restriction.

    Fine field is ``(n+2, n+2)`` with *odd* interior size n (grid points
    at h, 2h, ..., nh); coarse interior size is (n-1)/2 and coarse
    point I sits on fine point 2I.  Stencil [1 2 1; 2 4 2; 1 2 1]/16.
    """
    n, m = fine.shape[0] - 2, fine.shape[1] - 2
    if n % 2 == 0 or m % 2 == 0:
        raise ValueError("full weighting needs odd interior sizes")
    nc, mc = (n - 1) // 2, (m - 1) // 2
    f = fine
    ce = slice(2, n, 2)      # fine index 2I for I = 1..nc
    lo = slice(1, n - 1, 2)  # 2I - 1
    hi = slice(3, n + 1, 2)  # 2I + 1
    cem = slice(2, m, 2)
    lom = slice(1, m - 1, 2)
    him = slice(3, m + 1, 2)
    coarse = np.zeros((nc + 2, mc + 2))
    coarse[1:-1, 1:-1] = (
        4.0 * f[ce, cem]
        + 2.0 * (f[lo, cem] + f[hi, cem] + f[ce, lom] + f[ce, him])
        + f[lo, lom] + f[hi, lom] + f[lo, him] + f[hi, him]
    ) / 16.0
    return coarse


def _prolong_bilinear(coarse: np.ndarray, fine_shape: Tuple[int, int]
                      ) -> np.ndarray:
    """Vertex-centered bilinear prolongation (transpose of full
    weighting, up to scaling)."""
    fine = np.zeros(fine_shape)
    n, m = fine_shape[0] - 2, fine_shape[1] - 2
    cp = coarse  # includes zero ghost ring == homogeneous Dirichlet
    nc, mc = coarse.shape[0] - 2, coarse.shape[1] - 2
    # coincident points
    fine[2:n:2, 2:m:2] = cp[1:-1, 1:-1]
    # odd rows, even columns: average vertically
    fine[1:n + 1:2, 2:m:2] = 0.5 * (cp[0:nc + 1, 1:-1] + cp[1:nc + 2, 1:-1])
    # even rows, odd columns
    fine[2:n:2, 1:m + 1:2] = 0.5 * (cp[1:-1, 0:mc + 1] + cp[1:-1, 1:mc + 2])
    # odd rows, odd columns: average of four
    fine[1:n + 1:2, 1:m + 1:2] = 0.25 * (
        cp[0:nc + 1, 0:mc + 1] + cp[1:nc + 2, 0:mc + 1]
        + cp[0:nc + 1, 1:mc + 2] + cp[1:nc + 2, 1:mc + 2]
    )
    return fine


def pfmg_solve(
    grid: StructGrid,
    b: np.ndarray,
    loop: Optional[BoxLoop] = None,
    tol: float = 1e-8,
    max_cycles: int = 60,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    min_size: int = 3,
) -> Tuple[np.ndarray, List[float]]:
    """Geometric multigrid (PFMG-style) for the 2D Poisson problem.

    Vertex-centered: requires interior sizes of the form ``2^k - 1``
    (each level maps n -> (n-1)/2 until ``min_size``).  Returns
    (solution field, residual-norm history).
    """
    loop = loop if loop is not None else BoxLoop()

    def vcycle(g: StructGrid, bb: np.ndarray, uu: np.ndarray) -> np.ndarray:
        for _ in range(pre_sweeps):
            uu = g.jacobi_sweep(loop, bb, uu)
        nx_c = (g.nx - 1) // 2
        ny_c = (g.ny - 1) // 2
        if (
            g.nx <= min_size or g.ny <= min_size
            or g.nx % 2 == 0 or g.ny % 2 == 0
            or nx_c % 2 == 0 or ny_c % 2 == 0
        ):
            for _ in range(50):
                uu = g.jacobi_sweep(loop, bb, uu)
            return uu
        r = g.new_field()
        g.residual(loop, bb, uu, r)
        gc = StructGrid(nx_c, ny_c, h=2 * g.h)
        rc = _restrict_full_weighting(r)
        ec = vcycle(gc, rc, gc.new_field())
        uu = uu + _prolong_bilinear(ec, uu.shape)
        for _ in range(post_sweeps):
            uu = g.jacobi_sweep(loop, bb, uu)
        return uu

    u = grid.new_field()
    r = grid.new_field()
    grid.residual(loop, b, u, r)
    bnorm = float(np.linalg.norm(b[1:-1, 1:-1]))
    target = tol * (bnorm if bnorm > 0 else 1.0)
    history = [float(np.linalg.norm(r[1:-1, 1:-1]))]
    for _ in range(max_cycles):
        if history[-1] <= target:
            break
        u = vcycle(grid, b, u)
        grid.residual(loop, b, u, r)
        history.append(float(np.linalg.norm(r[1:-1, 1:-1])))
    return u, history
