"""CSR sparse-matrix wrapper with roofline accounting.

hypre's GPU port of the BoomerAMG solve phase works "completely in
terms of matrix-vector multiplications ... with the inclusion of
NVIDIA's cuSPARSE matvec routine" (§4.10.1).  :class:`CsrMatrix` is the
equivalent here: numerics delegate to :mod:`scipy.sparse` (our "BLAS"),
while every SpMV can be charged to a
:class:`~repro.core.kernels.KernelTrace` through :func:`spmv_spec` so
the roofline model prices the solve phase on any machine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.forall import ExecutionContext
from repro.core.kernels import KernelSpec

try:  # scipy's compiled SpMV kernel, used for out=-style matvecs
    from scipy.sparse import _sparsetools as _spt
except ImportError:  # pragma: no cover - scipy always ships it
    _spt = None


def spmv_spec(
    n_rows: int,
    nnz: int,
    name: str = "spmv",
    tuned: bool = True,
    precision: str = "fp64",
) -> KernelSpec:
    """Kernel spec for one CSR SpMV.

    Traffic model: values (8B) + column indices (4B) per nonzero,
    row pointers (4B) + x read (8B, assuming a reasonable hit rate
    folds gather re-reads into the efficiency factor) + y write (8B)
    per row.  Flops: one multiply-add per nonzero.

    ``tuned=True`` represents the cuSPARSE routine; ``False`` a naive
    port (lower bandwidth efficiency).
    """
    if n_rows < 0 or nnz < 0:
        raise ValueError("negative matrix dimensions")
    bytes_read = 12.0 * nnz + 12.0 * n_rows
    bytes_written = 8.0 * n_rows
    return KernelSpec(
        name=name,
        flops=2.0 * nnz,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        precision=precision,
        compute_efficiency=0.5,
        bandwidth_efficiency=0.65 if tuned else 0.35,
    )


class CsrMatrix:
    """Square-or-rectangular CSR matrix with kernel accounting.

    Parameters
    ----------
    matrix:
        Anything :func:`scipy.sparse.csr_matrix` accepts (dense array,
        COO triplets, another sparse matrix).
    ctx:
        Optional :class:`~repro.core.forall.ExecutionContext`; when
        given, :meth:`matvec` records an SpMV kernel in its trace.
    """

    def __init__(self, matrix, ctx: Optional[ExecutionContext] = None,
                 name: str = "A"):
        self.m = sp.csr_matrix(matrix)
        self.m.sum_duplicates()
        self.ctx = ctx
        self.name = name
        #: KernelSpecs reused across matvecs: shape and nnz are fixed
        #: for the matrix's lifetime, so the spec never changes —
        #: rebuilding (and re-validating) it per call was measurable
        #: on smoother-dominated AMG solves.
        self._spec_cache: dict = {}

    def _cached_spec(self, rows: int, name: str, tuned: bool) -> KernelSpec:
        key = (rows, name, tuned)
        spec = self._spec_cache.get(key)
        if spec is None:
            spec = spmv_spec(rows, self.nnz, name=name, tuned=tuned)
            self._spec_cache[key] = spec
        return spec

    # -- shape / structure -------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self.m.shape

    @property
    def nnz(self) -> int:
        return self.m.nnz

    @property
    def n_rows(self) -> int:
        return self.m.shape[0]

    def diagonal(self) -> np.ndarray:
        return self.m.diagonal()

    def row_abs_sums(self) -> np.ndarray:
        """l1 row sums |a_i1| + ... + |a_in| (for l1-Jacobi)."""
        return np.asarray(abs(self.m).sum(axis=1)).ravel()

    def toarray(self) -> np.ndarray:
        return self.m.toarray()

    def tocsr(self) -> sp.csr_matrix:
        return self.m

    # -- algebra -------------------------------------------------------------

    def matvec(self, x: np.ndarray, tuned: bool = True,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """y = A x, recording an SpMV kernel when a context is bound.

        ``out`` (shape ``(n_rows,)``, float64, contiguous) receives the
        product without allocating — the scratch-reuse path smoother
        sweeps depend on.  Falls back to an allocating product when
        scipy's compiled SpMV is unavailable or dtypes don't line up.
        """
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"matvec dimension mismatch: A is {self.shape}, x has {x.shape}"
            )
        if (
            out is not None and _spt is not None
            and x.ndim == 1 and out.ndim == 1
            and out.shape[0] == self.n_rows
            and out.dtype == self.m.dtype == x.dtype
            and out.flags.c_contiguous
        ):
            out[:] = 0.0
            _spt.csr_matvec(
                self.n_rows, self.shape[1], self.m.indptr, self.m.indices,
                self.m.data, np.ascontiguousarray(x), out,
            )
            y = out
        else:
            y = self.m @ x
            if out is not None:
                out[:] = y
                y = out
        if self.ctx is not None:
            self.ctx.trace.record_kernel(
                self._cached_spec(self.n_rows, f"spmv:{self.name}", tuned)
            )
        return y

    def rmatvec(self, x: np.ndarray, tuned: bool = True) -> np.ndarray:
        """y = A^T x (used by interpolation transposes in AMG)."""
        if x.shape[0] != self.shape[0]:
            raise ValueError("rmatvec dimension mismatch")
        y = self.m.T @ x
        if self.ctx is not None:
            self.ctx.trace.record_kernel(
                self._cached_spec(self.shape[1], f"spmvT:{self.name}", tuned)
            )
        return y

    def __matmul__(self, other):
        if isinstance(other, CsrMatrix):
            return CsrMatrix(self.m @ other.m, ctx=self.ctx,
                             name=f"{self.name}*{other.name}")
        return self.matvec(np.asarray(other))

    def transpose(self) -> "CsrMatrix":
        return CsrMatrix(self.m.T.tocsr(), ctx=self.ctx, name=f"{self.name}^T")

    def galerkin(self, p: "CsrMatrix") -> "CsrMatrix":
        """Coarse operator R A P with R = P^T (AMG Galerkin product)."""
        coarse = p.m.T @ self.m @ p.m
        return CsrMatrix(coarse.tocsr(), ctx=self.ctx, name=f"RAP({self.name})")

    def residual(self, b: np.ndarray, x: np.ndarray, tuned: bool = True) -> np.ndarray:
        return b - self.matvec(x, tuned=tuned)
