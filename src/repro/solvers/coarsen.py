"""Strength-of-connection and coarse-grid selection for classical AMG.

Implements the two coarsening families hypre exposes:

- :func:`rs_coarsen` — classical Ruge-Stueben first-pass selection
  driven by descending measure (number of points strongly influenced),
  the sequential CPU-era default.
- :func:`pmis_coarsen` — parallel maximal independent set with random
  tie-breaking, the GPU-friendly variant (each round is data-parallel).

Both operate on a boolean strength graph from :func:`strength_graph`
(classical negative-coupling criterion, threshold ``theta``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.util.rng import make_rng

#: point labels
F_POINT = 0
C_POINT = 1


def strength_graph(a, theta: float = 0.25) -> sp.csr_matrix:
    """Classical strength-of-connection matrix S (boolean CSR).

    j strongly influences i when ``-a_ij >= theta * max_k(-a_ik)``,
    maxima over off-diagonal negative couplings.  Rows with no negative
    off-diagonal couplings have no strong connections.
    """
    if not (0.0 < theta <= 1.0):
        raise ValueError("theta must be in (0, 1]")
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("strength graph needs a square matrix")
    coo = a.tocoo()
    off = coo.row != coo.col
    rows, cols, vals = coo.row[off], coo.col[off], coo.data[off]
    neg = -vals  # coupling magnitude for negative entries
    # per-row max of (-a_ij) over off-diagonals
    row_max = np.zeros(n)
    np.maximum.at(row_max, rows, neg)
    keep = (neg >= theta * row_max[rows]) & (neg > 0)
    s = sp.csr_matrix(
        (np.ones(np.count_nonzero(keep)), (rows[keep], cols[keep])),
        shape=(n, n),
    )
    return s


def rs_coarsen(s: sp.csr_matrix, seed: int = 0) -> np.ndarray:
    """Classical Ruge-Stueben first-pass C/F splitting.

    Measure of point i = number of points it strongly influences
    (column count of S).  Repeatedly pick the unassigned point with the
    largest measure as C; its strong neighbors become F; each new F
    point boosts the measure of *its* strong influences.

    Returns an int array of ``C_POINT``/``F_POINT`` labels.
    """
    s = sp.csr_matrix(s)
    n = s.shape[0]
    st = s.T.tocsr()  # st[i] = points that i strongly influences
    measure = np.asarray(st.getnnz(axis=1), dtype=np.float64)
    # tiny random jitter to break ties deterministically
    measure += 0.01 * make_rng(seed).random(n)
    labels = np.full(n, -1, dtype=np.int64)
    # points with no connections at all become F immediately
    isolated = (s.getnnz(axis=1) == 0) & (st.getnnz(axis=1) == 0)
    labels[isolated] = F_POINT
    measure[isolated] = -np.inf

    import heapq

    heap = [(-m, i) for i, m in enumerate(measure) if labels[i] == -1]
    heapq.heapify(heap)
    stale = np.zeros(n, dtype=bool)
    while heap:
        negm, i = heapq.heappop(heap)
        if labels[i] != -1:
            continue
        if stale[i] and -negm != measure[i]:
            stale[i] = False
            heapq.heappush(heap, (-measure[i], i))
            continue
        labels[i] = C_POINT
        # strong influences of i become F
        for j in st.indices[st.indptr[i]:st.indptr[i + 1]]:
            if labels[j] == -1:
                labels[j] = F_POINT
                # boost points the new F point depends on
                for k in s.indices[s.indptr[j]:s.indptr[j + 1]]:
                    if labels[k] == -1:
                        measure[k] += 1
                        stale[k] = True
                        heapq.heappush(heap, (-measure[k], k))
    labels[labels == -1] = F_POINT
    return labels


def pmis_coarsen(s: sp.csr_matrix, seed: int = 0, max_rounds: int = 1000
                 ) -> np.ndarray:
    """PMIS coarsening: data-parallel maximal-independent-set rounds.

    Each point gets weight = (#strong influences) + random in [0,1).
    Per round, every unassigned point that is a local maximum among its
    unassigned strong neighbors becomes C; unassigned strong neighbors
    of new C points become F.  All comparisons in a round are
    independent — this is the GPU-friendly selection.
    """
    s = sp.csr_matrix(s)
    n = s.shape[0]
    sym = ((s + s.T) > 0).astype(np.float64).tocsr()  # neighbor relation
    weights = np.asarray(s.T.tocsr().getnnz(axis=1), dtype=np.float64)
    weights += make_rng(seed).random(n)
    labels = np.full(n, -1, dtype=np.int64)
    # isolated points: immediately F (nothing to interpolate from; they
    # will be handled by the solver as trivial points)
    isolated = sym.getnnz(axis=1) == 0
    labels[isolated] = F_POINT
    for _ in range(max_rounds):
        unassigned = labels == -1
        if not unassigned.any():
            break
        w = np.where(unassigned, weights, -np.inf)
        # neighbor max via sparse max-product: for each i, max over
        # neighbors j of w[j]
        nbr_max = np.full(n, -np.inf)
        coo = sym.tocoo()
        np.maximum.at(nbr_max, coo.row, w[coo.col])
        new_c = unassigned & (w > nbr_max)
        if not new_c.any():
            # remaining points have no unassigned neighbors: make them C
            labels[unassigned] = C_POINT
            break
        labels[new_c] = C_POINT
        # strong neighbors of new C points become F
        idx = np.flatnonzero(new_c)
        touched = sym[idx].tocoo().col
        becomes_f = np.zeros(n, dtype=bool)
        becomes_f[touched] = True
        becomes_f &= labels == -1
        labels[becomes_f] = F_POINT
    labels[labels == -1] = F_POINT
    return labels


def coarse_fine_counts(labels: np.ndarray) -> Tuple[int, int]:
    """(#C, #F) from a label vector."""
    n_c = int(np.count_nonzero(labels == C_POINT))
    return n_c, labels.shape[0] - n_c
