"""Krylov solvers: preconditioned CG and restarted GMRES.

These mirror the hypre Krylov layer the paper's solve phase runs
through: operator-based (any callable or :class:`CsrMatrix`),
preconditioner-pluggable, and allocation-conscious (working vectors are
reused across iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.solvers.csr import CsrMatrix

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]


def _apply(op: Operator, x: np.ndarray) -> np.ndarray:
    if isinstance(op, CsrMatrix):
        return op.matvec(x)
    return op(x)


@dataclass
class ConvergenceInfo:
    """Iteration history returned by every Krylov solve."""

    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    @property
    def reduction(self) -> float:
        """||r_k|| / ||r_0||."""
        if len(self.residual_norms) < 2 or self.residual_norms[0] == 0:
            return 1.0
        return self.residual_norms[-1] / self.residual_norms[0]


def pcg(
    a: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Operator] = None,
    tol: float = 1e-8,
    max_iter: int = 500,
) -> "tuple[np.ndarray, ConvergenceInfo]":
    """Preconditioned conjugate gradients for SPD systems.

    Convergence test: ||r||_2 <= tol * ||b||_2 (hypre's default
    relative criterion).
    """
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if max_iter < 0:
        raise ValueError("max_iter must be >= 0")
    r = b - _apply(a, x)
    bnorm = float(np.linalg.norm(b))
    target = tol * (bnorm if bnorm > 0 else 1.0)
    norms = [float(np.linalg.norm(r))]
    if norms[0] <= target:
        return x, ConvergenceInfo(True, 0, norms)
    z = _apply(preconditioner, r) if preconditioner is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    for it in range(1, max_iter + 1):
        ap = _apply(a, p)
        pap = float(p @ ap)
        if pap <= 0:
            # not SPD (or breakdown): stop with current iterate
            return x, ConvergenceInfo(False, it - 1, norms)
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rnorm = float(np.linalg.norm(r))
        norms.append(rnorm)
        if rnorm <= target:
            return x, ConvergenceInfo(True, it, norms)
        z = _apply(preconditioner, r) if preconditioner is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return x, ConvergenceInfo(False, max_iter, norms)


def gmres(
    a: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Operator] = None,
    tol: float = 1e-8,
    restart: int = 30,
    max_iter: int = 500,
) -> "tuple[np.ndarray, ConvergenceInfo]":
    """Restarted GMRES(m) with left preconditioning.

    Handles non-symmetric systems (Cretin's rate matrices are
    non-symmetric, §4.3); the Arnoldi basis is re-orthogonalized via
    modified Gram-Schmidt.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if max_iter < 0:
        raise ValueError("max_iter must be >= 0")

    def prec(v: np.ndarray) -> np.ndarray:
        return _apply(preconditioner, v) if preconditioner is not None else v

    bnorm = float(np.linalg.norm(prec(b)))
    target = tol * (bnorm if bnorm > 0 else 1.0)
    norms: List[float] = []
    total_it = 0
    while total_it <= max_iter:
        r = prec(b - _apply(a, x))
        beta = float(np.linalg.norm(r))
        if not norms:
            norms.append(beta)
        if beta <= target:
            return x, ConvergenceInfo(True, total_it, norms)
        m = min(restart, max_iter - total_it)
        if m == 0:
            break
        q = np.zeros((m + 1, n))
        h = np.zeros((m + 1, m))
        cs, sn = np.zeros(m), np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[0] = r / beta
        k_used = 0
        for k in range(m):
            w = prec(_apply(a, q[k]))
            for i in range(k + 1):
                h[i, k] = float(w @ q[i])
                w -= h[i, k] * q[i]
            h_sub = float(np.linalg.norm(w))  # subdiagonal before rotation
            h[k + 1, k] = h_sub
            # Apply existing Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0:
                k_used = k
                break
            cs[k] = h[k, k] / denom
            sn[k] = h[k + 1, k] / denom
            h[k, k] = denom
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_it += 1
            k_used = k + 1
            norms.append(abs(float(g[k + 1])))
            if h_sub == 0 or abs(g[k + 1]) <= target:
                break  # happy breakdown or converged
            if k + 1 < m + 1:
                q[k + 1] = w / h_sub
        # Solve the small triangular system and update x.
        if k_used > 0:
            y = np.linalg.solve(h[:k_used, :k_used], g[:k_used])
            x = x + q[:k_used].T @ y
        if norms[-1] <= target:
            # Verify with a true residual (restarts can drift).
            true_r = float(np.linalg.norm(prec(b - _apply(a, x))))
            norms[-1] = true_r
            if true_r <= target:
                return x, ConvergenceInfo(True, total_it, norms)
        if k_used == 0:
            break
    return x, ConvergenceInfo(False, total_it, norms)
