"""Krylov solvers: preconditioned CG and restarted GMRES.

These mirror the hypre Krylov layer the paper's solve phase runs
through: operator-based (any callable or :class:`CsrMatrix`),
preconditioner-pluggable, and allocation-conscious (working vectors are
reused across iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.guard.errors import BreakdownError, NonFiniteError
from repro.guard.sentinels import (
    HealthMonitor,
    ResidualTrendProbe,
    default_monitor,
)
from repro.solvers.csr import CsrMatrix

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]


def _apply(op: Operator, x: np.ndarray) -> np.ndarray:
    if isinstance(op, CsrMatrix):
        return op.matvec(x)
    return op(x)


@dataclass
class ConvergenceInfo:
    """Iteration history returned by every Krylov solve."""

    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    @property
    def reduction(self) -> float:
        """||r_k|| / ||r_0||."""
        if len(self.residual_norms) < 2 or self.residual_norms[0] == 0:
            return 1.0
        return self.residual_norms[-1] / self.residual_norms[0]


class PcgSolver:
    """Stepwise preconditioned CG with checkpoint/restart support.

    Same numerics as :func:`pcg` (which is now a thin loop over this
    class), but one iteration at a time, so the resilience layer can
    snapshot the cross-iteration state (``x, r, p, rz``) between
    steps, roll back after an injected fault, and replay to a
    bit-identical result.  The ABFT check compares the recurrence
    residual norm against the true residual ``||b - Ax||`` — silent
    corruption of the iterate breaks their agreement.
    """

    def __init__(
        self,
        a: Operator,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        preconditioner: Optional[Operator] = None,
        tol: float = 1e-8,
        max_iter: int = 500,
        health: Optional[HealthMonitor] = None,
        probe: Optional[ResidualTrendProbe] = None,
    ):
        if max_iter < 0:
            raise ValueError("max_iter must be >= 0")
        self.a = a
        self.preconditioner = preconditioner
        self.b = np.asarray(b, dtype=np.float64)
        self.max_iter = max_iter
        # sentinels: auto-armed under REPRO_GUARD, absent (None) when
        # guards are off — the disabled path is the pre-guard loop plus
        # one `is None` test per step
        self._health = health if health is not None else default_monitor(
            "solvers.pcg"
        )
        self._probe = probe
        if self._health is not None:
            self._health.check_array(self.b, "b")
        self.x = (
            np.zeros_like(self.b) if x0 is None
            else np.array(x0, dtype=np.float64)
        )
        self.r = self.b - _apply(a, self.x)
        bnorm = float(np.linalg.norm(self.b))
        self._bnorm = bnorm if bnorm > 0 else 1.0
        self.target = tol * self._bnorm
        self.norms: List[float] = [float(np.linalg.norm(self.r))]
        self.it = 0
        self.converged = self.norms[0] <= self.target
        self.done = self.converged or max_iter == 0
        if not self.converged:
            z = (
                _apply(preconditioner, self.r)
                if preconditioner is not None else self.r.copy()
            )
            self.p = z.copy()
            self.rz = float(self.r @ z)
        else:
            self.p = np.zeros_like(self.b)
            self.rz = 0.0

    @property
    def progress(self) -> int:
        return self.it

    def step(self) -> bool:
        """One CG iteration; returns True when the solve is finished."""
        if self.done:
            return True
        ap = _apply(self.a, self.p)
        pap = float(self.p @ ap)
        if self._health is not None and not pap > 0:
            # covers pap <= 0 and pap NaN: operator not SPD, or
            # corrupted state — a typed breakdown under guard
            self.done = True
            raise BreakdownError(
                f"p.Ap = {pap!r} <= 0 (operator not SPD, or "
                "corrupted state)", where="solvers.pcg",
                context={"iteration": self.it, "pap": pap,
                         "residual": self.norms[-1]},
            )
        if pap <= 0:
            # legacy (guard-off) path: stop with the current iterate
            self.done = True
            return True
        alpha = self.rz / pap
        self.x += alpha * self.p
        self.r -= alpha * ap
        rnorm = float(np.linalg.norm(self.r))
        if self._health is not None:
            self._health.check_value(rnorm, "residual norm",
                                     context={"iteration": self.it})
            if self._probe is not None:
                self._probe.observe(rnorm, iteration=self.it)
        self.norms.append(rnorm)
        self.it += 1
        if rnorm <= self.target:
            self.converged = True
            self.done = True
            return True
        if self.it >= self.max_iter:
            self.done = True
            return True
        z = (
            _apply(self.preconditioner, self.r)
            if self.preconditioner is not None else self.r
        )
        rz_new = float(self.r @ z)
        beta = rz_new / self.rz
        self.rz = rz_new
        self.p = z + beta * self.p
        return False

    def info(self) -> ConvergenceInfo:
        return ConvergenceInfo(self.converged, self.it, list(self.norms))

    # -- resilience protocol -------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "x": self.x.copy(), "r": self.r.copy(), "p": self.p.copy(),
            "rz": self.rz, "it": self.it, "norms": np.asarray(self.norms),
            "done": self.done, "converged": self.converged,
        }

    def restore_state(self, state: dict) -> None:
        self.x = state["x"].copy()
        self.r = state["r"].copy()
        self.p = state["p"].copy()
        self.rz = state["rz"]
        self.it = state["it"]
        self.norms = [float(v) for v in state["norms"]]
        self.done = state["done"]
        self.converged = state["converged"]

    def abft_error(self) -> float:
        """Relative drift between recurrence and true residual norms."""
        true_r = float(np.linalg.norm(self.b - _apply(self.a, self.x)))
        return abs(true_r - self.norms[-1]) / self._bnorm

    def corrupt(self, rng, magnitude: float = 1e4) -> None:
        """Inject a silent corruption into the live iterate."""
        k = int(rng.integers(self.x.size))
        self.x[k] += magnitude

    def solve(self) -> "tuple[np.ndarray, ConvergenceInfo]":
        while not self.done:
            self.step()
        return self.x, self.info()


def pcg(
    a: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Operator] = None,
    tol: float = 1e-8,
    max_iter: int = 500,
    health: Optional[HealthMonitor] = None,
    probe: Optional[ResidualTrendProbe] = None,
) -> "tuple[np.ndarray, ConvergenceInfo]":
    """Preconditioned conjugate gradients for SPD systems.

    Convergence test: ||r||_2 <= tol * ||b||_2 (hypre's default
    relative criterion).  Under ``REPRO_GUARD`` (or with an explicit
    *health* monitor) NaN/Inf inputs and ``p.Ap <= 0`` breakdowns
    raise a typed :class:`NumericalHealthError` carrying the iteration
    context instead of iterating to ``max_iter``.
    """
    return PcgSolver(
        a, b, x0=x0, preconditioner=preconditioner, tol=tol,
        max_iter=max_iter, health=health, probe=probe,
    ).solve()


def gmres(
    a: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Operator] = None,
    tol: float = 1e-8,
    restart: int = 30,
    max_iter: int = 500,
    health: Optional[HealthMonitor] = None,
) -> "tuple[np.ndarray, ConvergenceInfo]":
    """Restarted GMRES(m) with left preconditioning.

    Handles non-symmetric systems (Cretin's rate matrices are
    non-symmetric, §4.3); the Arnoldi basis is re-orthogonalized via
    modified Gram-Schmidt.  Under ``REPRO_GUARD`` (or with an explicit
    *health* monitor), NaN/Inf in the inputs or the Arnoldi recurrence
    and a zero Givens denominator with an unconverged residual raise
    typed :class:`NumericalHealthError`\\ s with iteration context.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if max_iter < 0:
        raise ValueError("max_iter must be >= 0")
    if health is None:
        health = default_monitor("solvers.gmres")
    if health is not None:
        health.check_array(b, "b")

    def prec(v: np.ndarray) -> np.ndarray:
        return _apply(preconditioner, v) if preconditioner is not None else v

    bnorm = float(np.linalg.norm(prec(b)))
    target = tol * (bnorm if bnorm > 0 else 1.0)
    norms: List[float] = []
    total_it = 0
    while total_it <= max_iter:
        r = prec(b - _apply(a, x))
        beta = float(np.linalg.norm(r))
        if health is not None:
            health.check_value(beta, "residual norm",
                               context={"iteration": total_it})
        if not norms:
            norms.append(beta)
        if beta <= target:
            return x, ConvergenceInfo(True, total_it, norms)
        m = min(restart, max_iter - total_it)
        if m == 0:
            break
        q = np.zeros((m + 1, n))
        h = np.zeros((m + 1, m))
        cs, sn = np.zeros(m), np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        q[0] = r / beta
        k_used = 0
        for k in range(m):
            w = prec(_apply(a, q[k]))
            for i in range(k + 1):
                h[i, k] = float(w @ q[i])
                w -= h[i, k] * q[i]
            h_sub = float(np.linalg.norm(w))  # subdiagonal before rotation
            h[k + 1, k] = h_sub
            # Apply existing Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if health is not None and (denom != denom or (
                    denom == 0 and abs(float(g[k])) > target)):
                raise BreakdownError(
                    "Arnoldi breakdown: zero/NaN Givens denominator "
                    "with an unconverged residual",
                    where="solvers.gmres",
                    context={"iteration": total_it, "inner": k,
                             "residual": abs(float(g[k]))},
                )
            if denom == 0:
                k_used = k
                break
            cs[k] = h[k, k] / denom
            sn[k] = h[k + 1, k] / denom
            h[k, k] = denom
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_it += 1
            k_used = k + 1
            norms.append(abs(float(g[k + 1])))
            if h_sub == 0 or abs(g[k + 1]) <= target:
                break  # happy breakdown or converged
            if k + 1 < m + 1:
                q[k + 1] = w / h_sub
        # Solve the small triangular system and update x.
        if k_used > 0:
            y = np.linalg.solve(h[:k_used, :k_used], g[:k_used])
            x = x + q[:k_used].T @ y
        if norms[-1] <= target:
            # Verify with a true residual (restarts can drift).
            true_r = float(np.linalg.norm(prec(b - _apply(a, x))))
            norms[-1] = true_r
            if true_r <= target:
                return x, ConvergenceInfo(True, total_it, norms)
        if k_used == 0:
            break
    return x, ConvergenceInfo(False, total_it, norms)
