"""Standard sparse test-problem generators.

The hypre/MFEM/SUNDIALS experiments in the paper run on diffusion-type
operators; these generators produce the finite-difference analogs used
throughout the test and benchmark suites.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp


def poisson_1d(n: int) -> sp.csr_matrix:
    """1D Dirichlet Laplacian (tridiagonal [-1, 2, -1])."""
    if n < 1:
        raise ValueError("n must be >= 1")
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def poisson_2d(nx: int, ny: Optional[int] = None) -> sp.csr_matrix:
    """2D 5-point Dirichlet Laplacian on an nx-by-ny grid."""
    ny = nx if ny is None else ny
    ax, ay = poisson_1d(nx), poisson_1d(ny)
    ix, iy = sp.identity(nx), sp.identity(ny)
    out = (sp.kron(iy, ax) + sp.kron(ay, ix)).tocsr()
    out.eliminate_zeros()
    return out


def poisson_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None) -> sp.csr_matrix:
    """3D 7-point Dirichlet Laplacian on an nx-by-ny-by-nz grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    a2 = poisson_2d(nx, ny)
    az = poisson_1d(nz)
    i2 = sp.identity(nx * ny)
    iz = sp.identity(nz)
    out = (sp.kron(iz, a2) + sp.kron(az, i2)).tocsr()
    out.eliminate_zeros()
    return out


def anisotropic_2d(nx: int, ny: Optional[int] = None, epsilon: float = 0.01,
                   ) -> sp.csr_matrix:
    """2D anisotropic diffusion -u_xx - eps*u_yy (classic AMG stressor).

    Strong coupling in x only; classical coarsening should semi-coarsen.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    ny = nx if ny is None else ny
    ax, ay = poisson_1d(nx), poisson_1d(ny)
    ix, iy = sp.identity(nx), sp.identity(ny)
    out = (sp.kron(iy, ax) + epsilon * sp.kron(ay, ix)).tocsr()
    out.eliminate_zeros()
    return out


def random_spd(n: int, density: float = 0.05, seed: int = 0) -> sp.csr_matrix:
    """Random sparse diagonally dominant SPD matrix (solver stress tests)."""
    if not (0 < density <= 1):
        raise ValueError("density in (0, 1]")
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = (a + a.T) * 0.5
    # diagonal dominance => SPD
    rowsum = np.asarray(abs(a).sum(axis=1)).ravel()
    a = a + sp.diags(rowsum + 1.0)
    return a.tocsr()
