"""Relaxation methods used inside the AMG V-cycle.

hypre's GPU solve phase replaces Gauss-Seidel (inherently sequential)
with Jacobi-family smoothers whose sweeps are pure SpMV + AXPY — the
same observation drives these implementations:

- :func:`jacobi` / :func:`weighted_jacobi` — classic pointwise sweeps.
- :func:`l1_jacobi` — damping by l1 row sums; unconditionally
  convergent for symmetric positive definite systems and hypre's
  default GPU smoother.
- :func:`gauss_seidel` — the sequential CPU smoother, implemented with
  a sparse triangular solve.

All take and return dense vectors and accept an optional number of
sweeps; none allocate per-sweep beyond one residual vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.solvers.csr import CsrMatrix


def _as_csr(a) -> CsrMatrix:
    return a if isinstance(a, CsrMatrix) else CsrMatrix(a)


def jacobi(a, b: np.ndarray, x: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """Pointwise Jacobi: x += D^{-1}(b - Ax)."""
    return weighted_jacobi(a, b, x, weight=1.0, sweeps=sweeps)


def weighted_jacobi(
    a, b: np.ndarray, x: np.ndarray, weight: float = 2.0 / 3.0, sweeps: int = 1
) -> np.ndarray:
    """Damped Jacobi with relaxation *weight* (2/3 optimal for Poisson)."""
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    d = a.diagonal()
    if np.any(d == 0):
        raise ValueError("zero diagonal entry; Jacobi undefined")
    inv_d = weight / d
    for _ in range(sweeps):
        x = x + inv_d * (b - a.matvec(x))
    return x


def l1_jacobi(a, b: np.ndarray, x: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """l1-Jacobi: damp by l1 row sums instead of the diagonal.

    For SPD matrices this sweep is convergent without a tunable weight,
    which is why it became hypre's GPU-default smoother.
    """
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    l1 = a.row_abs_sums()
    if np.any(l1 == 0):
        raise ValueError("empty matrix row; l1-Jacobi undefined")
    inv = 1.0 / l1
    for _ in range(sweeps):
        x = x + inv * (b - a.matvec(x))
    return x


def gauss_seidel(
    a, b: np.ndarray, x: np.ndarray, sweeps: int = 1, backward: bool = False
) -> np.ndarray:
    """Gauss-Seidel via sparse triangular solve: (D+L) x_new = b - U x.

    Sequential by nature — the CPU-side smoother the GPU port moved
    away from.  ``backward=True`` sweeps in reverse order (for
    symmetric smoothing).
    """
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    m = a.tocsr()
    lower = sp.tril(m, k=0, format="csr")
    upper = sp.triu(m, k=1, format="csr")
    if backward:
        lower = sp.triu(m, k=0, format="csr")
        upper = sp.tril(m, k=-1, format="csr")
    if np.any(lower.diagonal() == 0):
        raise ValueError("zero diagonal entry; Gauss-Seidel undefined")
    for _ in range(sweeps):
        rhs = b - upper @ x
        x = spsolve_triangular(lower, rhs, lower=not backward)
    return x


def smoother_by_name(name: str):
    """Look up a smoother callable by its hypre-style name."""
    table = {
        "jacobi": jacobi,
        "weighted-jacobi": weighted_jacobi,
        "l1-jacobi": l1_jacobi,
        "gauss-seidel": gauss_seidel,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown smoother {name!r}; options: {sorted(table)}"
        )
