"""Relaxation methods used inside the AMG V-cycle.

hypre's GPU solve phase replaces Gauss-Seidel (inherently sequential)
with Jacobi-family smoothers whose sweeps are pure SpMV + AXPY — the
same observation drives these implementations:

- :func:`jacobi` / :func:`weighted_jacobi` — classic pointwise sweeps,
  with scratch buffers preallocated once and reused across sweeps.
- :func:`l1_jacobi` — damping by l1 row sums; unconditionally
  convergent for symmetric positive definite systems and hypre's
  default GPU smoother.
- :func:`gauss_seidel` — the sequential (lexicographic) reference
  smoother, implemented with a sparse triangular solve.  This is the
  SEQ reference path: slow, trusted, kept for correctness tests.
- :func:`gauss_seidel_multicolor` — the vectorized fast path:
  red-black/multicolor Gauss-Seidel.  Rows are partitioned into
  independent color classes (no two coupled rows share a color), and
  each class updates as one batched SpMV + AXPY.  Processing colors in
  ascending order is *exactly* lexicographic Gauss-Seidel on the
  color-permuted matrix — the equivalence the tests pin down.

All take and return dense vectors and accept an optional number of
sweeps; none allocate per-sweep beyond the shared scratch vector.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.obs import metrics as _metrics
from repro.obs import validate as _validate
from repro.solvers.csr import CsrMatrix


def _as_csr(a) -> CsrMatrix:
    return a if isinstance(a, CsrMatrix) else CsrMatrix(a)


def jacobi(a, b: np.ndarray, x: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """Pointwise Jacobi: x += D^{-1}(b - Ax)."""
    return weighted_jacobi(a, b, x, weight=1.0, sweeps=sweeps)


def _damped_sweeps(
    a: CsrMatrix, b: np.ndarray, x: np.ndarray, inv: np.ndarray, sweeps: int
) -> np.ndarray:
    """Shared sweep loop: x += inv * (b - A x), scratch reused.

    One residual-sized scratch buffer is allocated up front and every
    sweep writes into it (the SpMV lands there via ``matvec(out=)``),
    so the sweep loop itself is allocation-free.
    """
    if sweeps == 0:
        return x
    y = np.array(x, dtype=np.float64)
    scratch = np.empty_like(y)
    for _ in range(sweeps):
        a.matvec(y, out=scratch)
        np.subtract(b, scratch, out=scratch)
        scratch *= inv
        y += scratch
    return y


def weighted_jacobi(
    a, b: np.ndarray, x: np.ndarray, weight: float = 2.0 / 3.0, sweeps: int = 1
) -> np.ndarray:
    """Damped Jacobi with relaxation *weight* (2/3 optimal for Poisson)."""
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    d = a.diagonal()
    if np.any(d == 0):
        raise ValueError("zero diagonal entry; Jacobi undefined")
    return _damped_sweeps(a, b, x, weight / d, sweeps)


def l1_jacobi(a, b: np.ndarray, x: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """l1-Jacobi: damp by l1 row sums instead of the diagonal.

    For SPD matrices this sweep is convergent without a tunable weight,
    which is why it became hypre's GPU-default smoother.
    """
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    l1 = a.row_abs_sums()
    if np.any(l1 == 0):
        raise ValueError("empty matrix row; l1-Jacobi undefined")
    return _damped_sweeps(a, b, x, 1.0 / l1, sweeps)


def gauss_seidel(
    a, b: np.ndarray, x: np.ndarray, sweeps: int = 1, backward: bool = False
) -> np.ndarray:
    """Gauss-Seidel via sparse triangular solve: (D+L) x_new = b - U x.

    Sequential by nature — the CPU-side smoother the GPU port moved
    away from, kept as the lexicographic reference for
    :func:`gauss_seidel_multicolor`.  ``backward=True`` sweeps in
    reverse order (for symmetric smoothing).
    """
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    m = a.tocsr()
    lower = sp.tril(m, k=0, format="csr")
    upper = sp.triu(m, k=1, format="csr")
    if backward:
        lower = sp.triu(m, k=0, format="csr")
        upper = sp.tril(m, k=-1, format="csr")
    if np.any(lower.diagonal() == 0):
        raise ValueError("zero diagonal entry; Gauss-Seidel undefined")
    for _ in range(sweeps):
        rhs = b - upper @ x
        x = spsolve_triangular(lower, rhs, lower=not backward)
    return x


# ---------------------------------------------------------------------------
# multicolor (red-black) fast path
# ---------------------------------------------------------------------------


def multicolor_ordering(a, seed: int = 0) -> np.ndarray:
    """Distance-1 coloring of the matrix graph (Jones-Plassmann style).

    Returns an int array of color ids per row such that no two rows
    coupled by an off-diagonal entry (in A or A^T) share a color.  For
    a 5-point Poisson stencil this finds the classic red-black
    2-coloring; general sparsity gets a few more colors.

    The selection loop is fully vectorized: each round picks the rows
    whose (fixed, seeded) random priority beats every still-uncolored
    neighbor — an independent set — and assigns them the next color.
    Deterministic for a given (matrix sparsity, seed).
    """
    m = sp.csr_matrix(a.tocsr() if hasattr(a, "tocsr") else a)
    n = m.shape[0]
    if m.shape[0] != m.shape[1]:
        raise ValueError("coloring needs a square matrix")
    # symmetrized adjacency without the diagonal
    adj = (m + m.T).tocsr()
    adj.setdiag(0)
    adj.eliminate_zeros()
    indptr, indices = adj.indptr, adj.indices
    pri = np.random.default_rng(seed).random(n)
    colors = np.full(n, -1, dtype=np.int64)
    color = 0
    neg_inf = -np.inf
    nonempty = np.flatnonzero(np.diff(indptr) > 0)

    def local_max(mask: np.ndarray) -> np.ndarray:
        """Per-row max of priorities over neighbors still in *mask*."""
        masked = np.where(mask, pri, neg_inf)
        out = np.full(n, neg_inf)
        if nonempty.size:
            out[nonempty] = np.maximum.reduceat(
                masked[indices], indptr[nonempty]
            )
        return out

    while (colors < 0).any():
        # Luby-style maximal independent set among uncolored rows:
        # repeatedly take local priority maxima, retire their
        # neighbors from this round, until nothing is eligible.
        eligible = colors < 0
        in_set = np.zeros(n, dtype=bool)
        while eligible.any():
            masked = np.where(eligible, pri, neg_inf)
            selected = eligible & (masked > local_max(eligible))
            if not selected.any():  # pragma: no cover - ties measure-zero
                selected = np.zeros(n, dtype=bool)
                selected[int(np.argmax(masked))] = True
            in_set |= selected
            eligible &= ~selected
            touched = adj @ selected.astype(np.float64)
            eligible &= touched == 0.0
        colors[in_set] = color
        color += 1
    return colors


def gauss_seidel_multicolor(
    a,
    b: np.ndarray,
    x: np.ndarray,
    sweeps: int = 1,
    backward: bool = False,
    colors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized red-black/multicolor Gauss-Seidel sweep.

    Each color class is an independent set, so updating all its rows
    simultaneously (one sub-matrix SpMV + scaled correction) equals
    updating them one at a time.  Sweeping colors in ascending order
    is exactly lexicographic Gauss-Seidel on the color-sorted
    permutation of A; ``backward=True`` reverses the color order.

    ``colors`` may be precomputed via :func:`multicolor_ordering`;
    when *a* is a :class:`CsrMatrix` the ordering (and the per-color
    row slices) are computed once and cached on the matrix.
    """
    a = _as_csr(a)
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    m = a.tocsr()
    d = m.diagonal()
    if np.any(d == 0):
        raise ValueError("zero diagonal entry; Gauss-Seidel undefined")
    plan = getattr(a, "_mc_plan", None)
    if colors is not None or plan is None:
        if colors is None:
            colors = multicolor_ordering(m)
        n_colors = int(colors.max()) + 1
        groups: List[np.ndarray] = [
            np.flatnonzero(colors == c) for c in range(n_colors)
        ]
        subs = [m[rows] for rows in groups]
        plan = list(zip(groups, subs))
        a._mc_plan = plan
    y = np.array(x, dtype=np.float64)
    schedule = plan[::-1] if backward else plan
    for _ in range(sweeps):
        for rows, sub in schedule:
            r = sub @ y
            y[rows] += (b[rows] - r) / d[rows]
    _metrics.counter("solvers.gs.multicolor_calls").add()
    if _validate.validation_enabled():
        # residual-quality contract against the lexicographic reference:
        # multicolor ordering may differ pointwise, but its residual
        # must be no worse than 1.5x the sequential sweep's
        y_ref = gauss_seidel(a, b, x, sweeps=sweeps, backward=backward)
        r_fast = float(np.linalg.norm(b - m @ y))
        r_ref = float(np.linalg.norm(b - m @ y_ref))
        scale = float(np.linalg.norm(b)) or 1.0
        _validate.check(
            "solvers.gs.multicolor",
            r_fast <= 1.5 * r_ref + 1e-12 * scale,
            f"multicolor residual {r_fast:.3e} vs reference {r_ref:.3e}",
        )
    return y


def smoother_by_name(name: str):
    """Look up a smoother callable by its hypre-style name."""
    table = {
        "jacobi": jacobi,
        "weighted-jacobi": weighted_jacobi,
        "l1-jacobi": l1_jacobi,
        "gauss-seidel": gauss_seidel,
        "gauss-seidel-mc": gauss_seidel_multicolor,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown smoother {name!r}; options: {sorted(table)}"
        )
