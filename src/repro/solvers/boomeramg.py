"""BoomerAMG proxy: classical AMG with a CPU setup and portable solve.

Mirrors the structure the paper describes (§4.10.1):

- **setup phase** (:meth:`BoomerAMG.setup`): strength graphs,
  coarsening, interpolation, Galerkin products.  "The setup phase,
  which consists of complicated components, has been kept on the CPU"
  — here too: setup never records device kernels and always runs on
  host data.
- **solve phase** (:meth:`BoomerAMG.solve`, :meth:`BoomerAMG.vcycle`):
  "can completely be performed in terms of matrix-vector
  multiplications" — every operation below is an SpMV, an AXPY, or a
  Jacobi sweep (itself SpMV-shaped), and each SpMV is recorded in the
  bound execution context's kernel trace for roofline pricing.

The class is usable directly as a solver or as a preconditioner inside
:func:`repro.solvers.krylov.pcg` (one V-cycle per application), which
is exactly how Fig 8 / Table 4 use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.forall import ExecutionContext
from repro.guard.sentinels import (
    HealthMonitor,
    ResidualTrendProbe,
    default_monitor,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.solvers.coarsen import (
    C_POINT,
    coarse_fine_counts,
    pmis_coarsen,
    rs_coarsen,
    strength_graph,
)
from repro.solvers.csr import CsrMatrix
from repro.solvers.interp import direct_interpolation
from repro.solvers.krylov import ConvergenceInfo
from repro.solvers.smoothers import l1_jacobi, weighted_jacobi


@dataclass
class AmgLevel:
    a: CsrMatrix
    p: Optional[CsrMatrix] = None  # to next-coarser level


@dataclass
class AmgHierarchy:
    levels: List[AmgLevel] = field(default_factory=list)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """sum(nnz per level) / nnz(finest) — hypre's standard metric."""
        base = self.levels[0].a.nnz
        return sum(level.a.nnz for level in self.levels) / base

    @property
    def grid_complexity(self) -> float:
        base = self.levels[0].a.n_rows
        return sum(level.a.n_rows for level in self.levels) / base


class BoomerAMG:
    """Classical AMG solver/preconditioner.

    Parameters
    ----------
    theta:
        Strength threshold for coarsening.
    coarsening:
        ``"rs"`` (sequential classical) or ``"pmis"`` (GPU-friendly).
    smoother:
        ``"l1-jacobi"`` (GPU default) or ``"weighted-jacobi"``.
    max_levels, coarse_size:
        Stop coarsening at ``coarse_size`` unknowns or ``max_levels``.
    ctx:
        Optional execution context; solve-phase SpMVs are recorded
        there.
    """

    def __init__(
        self,
        theta: float = 0.25,
        coarsening: str = "rs",
        smoother: str = "l1-jacobi",
        max_levels: int = 25,
        coarse_size: int = 40,
        pre_sweeps: int = 1,
        post_sweeps: int = 1,
        seed: int = 0,
        ctx: Optional[ExecutionContext] = None,
    ):
        if coarsening not in ("rs", "pmis"):
            raise ValueError("coarsening must be 'rs' or 'pmis'")
        if smoother not in ("l1-jacobi", "weighted-jacobi"):
            raise ValueError("smoother must be 'l1-jacobi' or 'weighted-jacobi'")
        if max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        self.theta = theta
        self.coarsening = coarsening
        self.smoother_name = smoother
        self.max_levels = max_levels
        self.coarse_size = coarse_size
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.seed = seed
        self.ctx = ctx
        self.hierarchy: Optional[AmgHierarchy] = None
        self._coarse_lu = None

    # ------------------------------------------------------------------
    # setup phase (CPU)
    # ------------------------------------------------------------------

    def setup(self, a) -> AmgHierarchy:
        """Build the multigrid hierarchy.

        Runs on the CPU (the paper kept the setup phase there), but
        records what a GPU port *would* cost into
        :attr:`setup_trace` — the analysis behind §5's "ongoing
        research will port the AMG setup phase in hypre to GPUs".
        RS coarsening's heap loop is inherently sequential and records
        no device kernel; PMIS rounds, strength, interpolation and the
        Galerkin sparse triple product are all expressible as device
        kernels.
        """
        with _trace.span("solvers.amg.setup", coarsening=self.coarsening):
            hierarchy = self._setup(a)
        _metrics.counter("solvers.amg.setups").add()
        _metrics.gauge("solvers.amg.levels").set(hierarchy.num_levels)
        return hierarchy

    def _setup(self, a) -> AmgHierarchy:
        from repro.core.kernels import KernelSpec, KernelTrace

        self.setup_trace = KernelTrace()
        self.setup_gpu_portable = self.coarsening == "pmis"
        a = a if isinstance(a, CsrMatrix) else CsrMatrix(a, ctx=self.ctx)
        a.ctx = self.ctx
        levels = [AmgLevel(a=a)]
        current = a
        while (
            current.n_rows > self.coarse_size
            and len(levels) < self.max_levels
        ):
            s = strength_graph(current.tocsr(), theta=self.theta)
            self.setup_trace.record_kernel(KernelSpec(
                name="setup-strength", flops=3.0 * current.nnz,
                bytes_read=12.0 * current.nnz,
                bytes_written=8.0 * s.nnz,
                compute_efficiency=0.3, bandwidth_efficiency=0.5,
            ))
            if self.coarsening == "rs":
                labels = rs_coarsen(s, seed=self.seed)
                # sequential heap algorithm: not a device kernel
            else:
                labels = pmis_coarsen(s, seed=self.seed)
                self.setup_trace.record_kernel(KernelSpec(
                    name="setup-pmis", flops=2.0 * s.nnz,
                    bytes_read=8.0 * s.nnz, bytes_written=8.0 * s.shape[0],
                    launches=4,  # typical independent-set rounds
                    compute_efficiency=0.3, bandwidth_efficiency=0.4,
                ))
            n_c, _ = coarse_fine_counts(labels)
            if n_c == 0 or n_c >= current.n_rows:
                break  # coarsening stalled
            p = direct_interpolation(current.tocsr(), s, labels)
            self.setup_trace.record_kernel(KernelSpec(
                name="setup-interp", flops=6.0 * p.nnz,
                bytes_read=12.0 * (current.nnz + s.nnz),
                bytes_written=12.0 * p.nnz,
                compute_efficiency=0.25, bandwidth_efficiency=0.35,
            ))
            p_wrapped = CsrMatrix(p, ctx=self.ctx, name=f"P{len(levels)}")
            coarse = current.galerkin(p_wrapped)
            # spgemm triple product: flops ~ 2 * nnz(A) * avg nnz/row(P)
            avg_p = p.nnz / max(p.shape[0], 1)
            self.setup_trace.record_kernel(KernelSpec(
                name="setup-galerkin", flops=4.0 * current.nnz * avg_p,
                bytes_read=12.0 * (current.nnz + 2 * p.nnz),
                bytes_written=12.0 * coarse.nnz,
                compute_efficiency=0.15,  # spgemm runs far below peak
                bandwidth_efficiency=0.3,
            ))
            levels[-1].p = p_wrapped
            levels.append(AmgLevel(a=coarse))
            current = coarse
        self.hierarchy = AmgHierarchy(levels=levels)
        # Direct solve on the coarsest level (dense LU; it is tiny).
        coarsest = levels[-1].a.toarray()
        # Regularize in case the coarse operator is singular (pure
        # Neumann-like leftovers).
        if coarsest.shape[0] > 0:
            reg = 1e-12 * np.trace(np.abs(coarsest)) / max(coarsest.shape[0], 1)
            self._coarse_lu = np.linalg.inv(
                coarsest + reg * np.eye(coarsest.shape[0])
            )
        return self.hierarchy

    # ------------------------------------------------------------------
    # solve phase (portable: SpMV + AXPY only)
    # ------------------------------------------------------------------

    def _smooth(self, a: CsrMatrix, b: np.ndarray, x: np.ndarray,
                sweeps: int) -> np.ndarray:
        _metrics.counter("solvers.amg.smooth_sweeps").add(sweeps)
        if self.smoother_name == "l1-jacobi":
            return l1_jacobi(a, b, x, sweeps=sweeps)
        return weighted_jacobi(a, b, x, sweeps=sweeps)

    def vcycle(self, b: np.ndarray, x: Optional[np.ndarray] = None,
               level: int = 0) -> np.ndarray:
        """One V(pre,post)-cycle starting at *level*."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() before vcycle()")
        if level == 0:
            with _trace.span("solvers.amg.vcycle",
                             levels=self.hierarchy.num_levels):
                x = self._vcycle(b, x, 0)
            _metrics.counter("solvers.amg.vcycles").add()
            mon = default_monitor("solvers.amg.vcycle")
            if mon is not None:
                mon.check_array(x, "V-cycle output")
            return x
        return self._vcycle(b, x, level)

    def _vcycle(self, b: np.ndarray, x: Optional[np.ndarray],
                level: int) -> np.ndarray:
        lvl = self.hierarchy.levels[level]
        x = np.zeros_like(b) if x is None else x
        if level == self.hierarchy.num_levels - 1:
            return self._coarse_lu @ b if self._coarse_lu is not None else x
        x = self._smooth(lvl.a, b, x, self.pre_sweeps)
        r = lvl.a.residual(b, x)
        rc = lvl.p.rmatvec(r)
        ec = self._vcycle(rc, None, level + 1)
        x = x + lvl.p.matvec(ec)
        x = self._smooth(lvl.a, b, x, self.post_sweeps)
        return x

    def solve(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        max_iter: int = 100,
    ) -> "tuple[np.ndarray, ConvergenceInfo]":
        """Stand-alone AMG iteration: repeat V-cycles to tolerance."""
        return self.solve_session(b, x0=x0, tol=tol, max_iter=max_iter).solve()

    def solve_session(
        self,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        max_iter: int = 100,
        health: Optional[HealthMonitor] = None,
        probe: Optional[ResidualTrendProbe] = None,
    ) -> "AmgSolve":
        """Stepwise (checkpointable) stand-alone AMG solve."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() before solve()")
        return AmgSolve(self, b, x0=x0, tol=tol, max_iter=max_iter,
                        health=health, probe=probe)

    # ------------------------------------------------------------------

    def as_preconditioner(self) -> Callable[[np.ndarray], np.ndarray]:
        """One-V-cycle preconditioner callable for the Krylov layer."""
        if self.hierarchy is None:
            raise RuntimeError("call setup() before as_preconditioner()")

        def apply(r: np.ndarray) -> np.ndarray:
            return self.vcycle(r)

        return apply


class AmgSolve:
    """One stand-alone AMG solve, advanced one V-cycle at a time.

    The cross-iteration state is just the iterate (the hierarchy is
    immutable after setup), so a checkpoint is cheap: ``x`` plus the
    residual history.  Restoring and replaying V-cycles reproduces the
    uninterrupted solve bit-for-bit — V-cycles are deterministic.
    """

    def __init__(
        self,
        amg: BoomerAMG,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: float = 1e-8,
        max_iter: int = 100,
        health: Optional[HealthMonitor] = None,
        probe: Optional[ResidualTrendProbe] = None,
    ):
        if amg.hierarchy is None:
            raise RuntimeError("call setup() before AmgSolve")
        if max_iter < 0:
            raise ValueError("max_iter must be >= 0")
        self.amg = amg
        self.b = np.asarray(b, dtype=np.float64)
        self.max_iter = max_iter
        # sentinels: auto-armed under REPRO_GUARD, None when off
        self._health = health if health is not None else default_monitor(
            "solvers.amg"
        )
        self._probe = probe
        if self._health is not None:
            self._health.check_array(self.b, "b")
        self.x = (
            np.zeros_like(self.b) if x0 is None
            else np.array(x0, dtype=np.float64)
        )
        a = amg.hierarchy.levels[0].a
        bnorm = float(np.linalg.norm(self.b))
        self._bnorm = bnorm if bnorm > 0 else 1.0
        self.target = tol * self._bnorm
        self.norms: List[float] = [
            float(np.linalg.norm(a.residual(self.b, self.x)))
        ]
        self.it = 0
        self.converged = self.norms[0] <= self.target
        self.done = self.converged or max_iter == 0

    @property
    def progress(self) -> int:
        return self.it

    def step(self) -> bool:
        """One V-cycle; returns True when the solve is finished."""
        if self.done:
            return True
        a = self.amg.hierarchy.levels[0].a
        self.x = self.amg.vcycle(self.b, self.x)
        rnorm = float(np.linalg.norm(a.residual(self.b, self.x)))
        if self._health is not None:
            self._health.check_value(rnorm, "residual norm",
                                     context={"iteration": self.it})
            if self._probe is not None:
                self._probe.observe(rnorm, iteration=self.it)
        self.norms.append(rnorm)
        self.it += 1
        if rnorm <= self.target:
            self.converged = True
            self.done = True
        elif self.it >= self.max_iter:
            self.done = True
        return self.done

    def info(self) -> ConvergenceInfo:
        return ConvergenceInfo(self.converged, self.it, list(self.norms))

    def solve(self) -> "tuple[np.ndarray, ConvergenceInfo]":
        while not self.done:
            self.step()
        return self.x, self.info()

    # -- resilience protocol -------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "x": self.x.copy(), "it": self.it, "norms": np.asarray(self.norms),
            "done": self.done, "converged": self.converged,
        }

    def restore_state(self, state: dict) -> None:
        self.x = state["x"].copy()
        self.it = state["it"]
        self.norms = [float(v) for v in state["norms"]]
        self.done = state["done"]
        self.converged = state["converged"]

    def abft_error(self) -> float:
        """Relative drift between the recorded and true residual norms."""
        a = self.amg.hierarchy.levels[0].a
        true_r = float(np.linalg.norm(a.residual(self.b, self.x)))
        return abs(true_r - self.norms[-1]) / self._bnorm

    def corrupt(self, rng, magnitude: float = 1e4) -> None:
        """Inject a silent corruption into the live iterate."""
        k = int(rng.integers(self.x.size))
        self.x[k] += magnitude
