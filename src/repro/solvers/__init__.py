"""hypre proxy: algebraic multigrid, Krylov solvers, structured BoxLoops.

Reproduces the Tools-and-Libraries *hypre* activity (§4.10.1):

- :mod:`repro.solvers.csr` — CSR matrix wrapper whose SpMV records
  roofline kernel specs (the cuSPARSE-matvec port of the BoomerAMG
  solve phase).
- :mod:`repro.solvers.krylov` — PCG and restarted GMRES built on
  operator callbacks (the hypre Krylov layer).
- :mod:`repro.solvers.smoothers` — Jacobi / weighted-Jacobi /
  l1-Jacobi / Gauss-Seidel relaxation.  l1-Jacobi is the GPU-friendly
  smoother hypre switched to; Gauss-Seidel is the sequential CPU
  classic.
- :mod:`repro.solvers.coarsen` / :mod:`repro.solvers.interp` —
  strength-of-connection, classical Ruge-Stueben and PMIS coarsening,
  direct interpolation.
- :mod:`repro.solvers.boomeramg` — the unstructured AMG solver: setup
  on the CPU (exactly as the paper kept it), matvec-only V-cycle solve
  phase portable across backends.
- :mod:`repro.solvers.structured` — the BoxLoop abstraction and a
  PFMG-style structured solver: structured stencil kernels written
  once against BoxLoop and retargeted per backend.
- :mod:`repro.solvers.problems` — standard test-problem generators
  (2D/3D Poisson, anisotropic diffusion).
"""

from repro.solvers.csr import CsrMatrix, spmv_spec
from repro.solvers.krylov import ConvergenceInfo, gmres, pcg
from repro.solvers.smoothers import (
    gauss_seidel,
    gauss_seidel_multicolor,
    jacobi,
    l1_jacobi,
    multicolor_ordering,
    weighted_jacobi,
)
from repro.solvers.coarsen import pmis_coarsen, rs_coarsen, strength_graph
from repro.solvers.interp import direct_interpolation
from repro.solvers.boomeramg import AmgHierarchy, BoomerAMG
from repro.solvers.structured import Box, BoxLoop, StructGrid, pfmg_solve
from repro.solvers.problems import poisson_2d, poisson_3d, anisotropic_2d

__all__ = [
    "CsrMatrix",
    "spmv_spec",
    "ConvergenceInfo",
    "pcg",
    "gmres",
    "jacobi",
    "weighted_jacobi",
    "l1_jacobi",
    "gauss_seidel",
    "gauss_seidel_multicolor",
    "multicolor_ordering",
    "strength_graph",
    "rs_coarsen",
    "pmis_coarsen",
    "direct_interpolation",
    "BoomerAMG",
    "AmgHierarchy",
    "Box",
    "BoxLoop",
    "StructGrid",
    "pfmg_solve",
    "poisson_2d",
    "poisson_3d",
    "anisotropic_2d",
]
