"""The SUNDIALS NVector operation set with host and device backends.

The integrator (:mod:`repro.ode.bdf`) never touches raw arrays; it
calls the generic operations below.  ``HostVector`` wraps a plain NumPy
array.  ``DeviceVector`` wraps a device-space
:class:`~repro.core.memory.ManagedArray`: construction "allocates, then
moves, a vector's data to the GPU" (§4.10.2) through a
:class:`~repro.core.memory.ResourceManager`, so every host<->device
crossing is visible in the transfer trace.  The only time data moves
back is an explicit :meth:`DeviceVector.to_host` — mirroring the
paper's "the only time vector data needs to transfer back to the CPU
is when a user needs it for I/O purposes".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.memory import ManagedArray, MemorySpace, ResourceManager


class NVector:
    """Abstract NVector: the operations SUNDIALS integrators require."""

    def clone(self) -> "NVector":
        raise NotImplementedError

    @property
    def array(self) -> np.ndarray:
        """The backing array (for backend-internal use and tests)."""
        raise NotImplementedError

    # -- SUNDIALS-style operations ------------------------------------

    def linear_sum(self, a: float, x: "NVector", b: float, y: "NVector") -> None:
        """self = a*x + b*y."""
        out = self.array
        np.multiply(x.array, a, out=out)
        out += b * y.array

    def scale(self, c: float, x: "NVector") -> None:
        """self = c*x."""
        np.multiply(x.array, c, out=self.array)

    def const(self, c: float) -> None:
        self.array.fill(c)

    def prod(self, x: "NVector", y: "NVector") -> None:
        np.multiply(x.array, y.array, out=self.array)

    def div(self, x: "NVector", y: "NVector") -> None:
        np.divide(x.array, y.array, out=self.array)

    def inv(self, x: "NVector") -> None:
        np.divide(1.0, x.array, out=self.array)

    def abs_of(self, x: "NVector") -> None:
        np.abs(x.array, out=self.array)

    def add_const(self, x: "NVector", b: float) -> None:
        np.add(x.array, b, out=self.array)

    def axpy(self, a: float, x: "NVector") -> None:
        out = self.array
        out += a * x.array

    def copy_from(self, x: "NVector") -> None:
        np.copyto(self.array, x.array)

    # -- reductions ------------------------------------------------------

    def dot(self, y: "NVector") -> float:
        return float(self.array @ y.array)

    def max_norm(self) -> float:
        return float(np.abs(self.array).max()) if self.array.size else 0.0

    def wrms_norm(self, w: "NVector") -> float:
        """Weighted RMS norm — CVODE's error norm."""
        n = self.array.size
        if n == 0:
            return 0.0
        return float(np.sqrt(np.mean((self.array * w.array) ** 2)))

    def l1_norm(self) -> float:
        return float(np.abs(self.array).sum())

    def min_value(self) -> float:
        return float(self.array.min()) if self.array.size else 0.0

    @property
    def size(self) -> int:
        return self.array.size


class HostVector(NVector):
    """NVector over a plain host NumPy array."""

    def __init__(self, data: np.ndarray):
        self._data = np.asarray(data, dtype=np.float64)

    @classmethod
    def zeros(cls, n: int) -> "HostVector":
        return cls(np.zeros(n))

    @property
    def array(self) -> np.ndarray:
        return self._data

    def clone(self) -> "HostVector":
        return HostVector(np.zeros_like(self._data))


class DeviceVector(NVector):
    """NVector whose data lives in the modeled device space.

    The constructor moves host data to the device through the resource
    manager (recording the H2D transfer).  All NVector operations then
    run on device-resident data with no further transfers — the
    integration loop stays transfer-free, which is the entire point of
    the SUNDIALS GPU backend design.
    """

    def __init__(self, managed: ManagedArray, manager: ResourceManager):
        if managed.space is not MemorySpace.DEVICE:
            raise ValueError("DeviceVector requires a device-space array")
        self._managed = managed
        self._manager = manager

    @classmethod
    def from_host(cls, data: np.ndarray, manager: ResourceManager,
                  name: str = "nvector") -> "DeviceVector":
        host = manager.adopt(np.asarray(data, dtype=np.float64),
                             MemorySpace.HOST, name=f"{name}:host")
        dev = manager.allocate(host.shape, space=MemorySpace.DEVICE, name=name)
        manager.copy(host, dev, name=f"h2d:{name}")
        manager.deallocate(host)
        return cls(dev, manager)

    @classmethod
    def zeros(cls, n: int, manager: ResourceManager, name: str = "nvector"
              ) -> "DeviceVector":
        dev = manager.allocate((n,), space=MemorySpace.DEVICE, name=name,
                               fill=0.0)
        return cls(dev, manager)

    @property
    def array(self) -> np.ndarray:
        return self._managed.data

    @property
    def manager(self) -> ResourceManager:
        return self._manager

    def clone(self) -> "DeviceVector":
        dev = self._manager.allocate(
            self._managed.shape, space=MemorySpace.DEVICE,
            name=self._managed.name, fill=0.0,
        )
        return DeviceVector(dev, self._manager)

    def to_host(self, name: str = "d2h:nvector") -> np.ndarray:
        """Explicit device->host copy (I/O only); records the transfer."""
        host = self._manager.allocate(
            self._managed.shape, space=MemorySpace.HOST, name=name
        )
        self._manager.copy(self._managed, host, name=name)
        out = host.data.copy()
        self._manager.deallocate(host)
        return out

    def free(self) -> None:
        self._manager.deallocate(self._managed)
