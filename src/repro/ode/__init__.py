"""SUNDIALS proxy: vector abstraction and stiff time integration.

Reproduces the SUNDIALS activity (§4.10.2): "SUNDIALS already
expresses its vector and algebraic solver operations generically by
abstracting the specific operations behind methods in backends.  The
team's approach leaves high-level control to the time integrator and
nonlinear solver calls on the CPU, and supplies vector implementations
that operate on data in GPU memory."

- :mod:`repro.ode.nvector` — the NVector operation set with a host
  backend and a device backend (ManagedArray-based, transfer-accounted
  through the mini-Umpire layer).  The integrator below is written
  purely against this interface, so swapping backends changes *where*
  the data lives without touching integrator logic.
- :mod:`repro.ode.bdf` — a CVODE-style variable-step BDF(1,2)
  integrator with an inexact-Newton corrector and pluggable linear
  solver.  (CVODE's orders 3-5 use variable-coefficient history
  formulas that are out of scope; orders 1-2 with genuine adaptive
  stepping preserve the stiff-integrator behaviour the paper's
  experiments exercise — see DESIGN.md substitutions.)
- :mod:`repro.ode.erk` — explicit adaptive Runge-Kutta (Bogacki-
  Shampine 3(2)) for non-stiff comparison runs.
"""

from repro.ode.nvector import DeviceVector, HostVector, NVector
from repro.ode.bdf import BdfIntegrator, BdfOptions, StepStats
from repro.ode.erk import erk_integrate

__all__ = [
    "NVector",
    "HostVector",
    "DeviceVector",
    "BdfIntegrator",
    "BdfOptions",
    "StepStats",
    "erk_integrate",
]
