"""CVODE-style adaptive BDF integrator with Newton corrector.

Solves stiff systems in the (optionally mass-matrix) form

    M du/dt = F(t, u),    u(t0) = u0

with variable-step BDF of order 1-2 (genuine variable-step
coefficients for BDF2), a modified-Newton corrector with lagged
Jacobian/preconditioner setups, and CVODE's weighted-RMS error control
(``rtol``/``atol`` weights, step acceptance when the local error
estimate's WRMS norm is <= 1).

The linear solve per Newton iteration — the expensive part, and the
part the paper offloads to GPUs — is fully pluggable: the user
supplies ``make_lin_solver(gamma, t, u)`` returning a callable that
solves ``(M + gamma * K) x = r`` where ``K ~= -dF/du``.  The
integrator calls it only when the Newton iteration demands a refresh
(gamma drift or convergence failure), mirroring CVODE's setup/solve
split.  High-level control flow stays on the host; all vector math
goes through the NVector interface, so device-backed vectors never
migrate (§4.10.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.guard.config import guard_enabled
from repro.guard.errors import StagnationError
from repro.guard.sentinels import (
    HealthMonitor,
    WrmsTrendProbe,
    default_monitor,
)
from repro.ode.nvector import HostVector, NVector
from repro.util.timing import TimerRegistry

RhsFn = Callable[[float, np.ndarray], np.ndarray]
LinSolveFn = Callable[[np.ndarray], np.ndarray]
MakeLinSolverFn = Callable[[float, float, np.ndarray], LinSolveFn]
MassFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class BdfOptions:
    rtol: float = 1e-6
    atol: float = 1e-9
    max_order: int = 2
    h0: Optional[float] = None
    h_min: float = 1e-14
    h_max: float = np.inf
    max_steps: int = 100_000
    newton_tol: float = 0.1   # Newton stops when update WRMS < this
    max_newton: int = 4
    #: rebuild the linear solver when gamma changes by this fraction
    gamma_drift: float = 0.3

    def __post_init__(self) -> None:
        if self.rtol <= 0 or self.atol <= 0:
            raise ValueError("tolerances must be positive")
        if self.max_order not in (1, 2):
            raise ValueError("max_order must be 1 or 2 (see module docs)")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")


@dataclass
class StepStats:
    """CVODE-style cumulative counters."""

    n_steps: int = 0
    n_rhs: int = 0
    n_newton: int = 0
    n_lin_setups: int = 0
    n_err_fails: int = 0
    n_newton_fails: int = 0


class BdfIntegrator:
    """Adaptive BDF(1,2) with modified Newton.

    Parameters
    ----------
    rhs:
        ``F(t, u) -> du`` (the spatial right-hand side; *not*
        pre-multiplied by ``M^{-1}``).
    make_lin_solver:
        ``(gamma, t, u) -> solve`` where ``solve(r)`` returns ``x``
        with ``(M + gamma K) x = r``.  For identity mass and
        ``K = -dF/du`` this is the standard CVODE Newton matrix.
    mass_mult:
        ``v -> M v``; identity when omitted.
    timers:
        Optional phase timers; the integrator attributes time to
        ``"formulation"`` (history/predictor/rhs work) and relies on
        the user's linear solver to record its own phases — this is
        how Fig 8's breakdown is measured.
    """

    def __init__(
        self,
        rhs: RhsFn,
        make_lin_solver: MakeLinSolverFn,
        mass_mult: Optional[MassFn] = None,
        options: Optional[BdfOptions] = None,
        timers: Optional[TimerRegistry] = None,
        health: Optional[HealthMonitor] = None,
        probe: Optional[WrmsTrendProbe] = None,
    ):
        self.rhs = rhs
        self.make_lin_solver = make_lin_solver
        self.mass_mult = mass_mult if mass_mult is not None else (lambda v: v)
        self.opts = options if options is not None else BdfOptions()
        self.stats = StepStats()
        self.timers = timers if timers is not None else TimerRegistry()
        #: injected sentinels; when None they are armed per-integrate
        #: under REPRO_GUARD (and absent entirely with guards off)
        self._health = health
        self._probe = probe

    # ------------------------------------------------------------------

    def _weights(self, u: np.ndarray) -> np.ndarray:
        return 1.0 / (self.opts.rtol * np.abs(u) + self.opts.atol)

    @staticmethod
    def _wrms(v: np.ndarray, w: np.ndarray) -> float:
        if v.size == 0:
            return 0.0
        return float(np.sqrt(np.mean((v * w) ** 2)))

    def _initial_step(self, t0: float, u0: np.ndarray, t1: float) -> float:
        if self.opts.h0 is not None:
            return min(self.opts.h0, t1 - t0)
        f0 = self.rhs(t0, u0)
        self.stats.n_rhs += 1
        w = self._weights(u0)
        d0 = self._wrms(u0, w)
        d1 = self._wrms(f0, w)
        if d0 < 1e-5 or d1 < 1e-5:
            h = 1e-6 * (t1 - t0)
        else:
            h = 0.01 * d0 / d1
        return float(min(h, t1 - t0, self.opts.h_max))

    # ------------------------------------------------------------------

    def integrate(
        self,
        t0: float,
        u0: np.ndarray,
        t_end: float,
        t_eval: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Integrate from *t0* to *t_end*.

        Returns ``(times, states)`` where states has one row per
        output time.  ``t_eval`` defaults to ``[t_end]``; each output
        time is hit exactly (the step is clipped).
        """
        if t_end <= t0:
            raise ValueError("t_end must exceed t0")
        u0 = np.asarray(u0, dtype=np.float64)
        outputs = (
            np.asarray(t_eval, dtype=np.float64)
            if t_eval is not None
            else np.array([t_end])
        )
        if outputs.ndim != 1 or outputs.size == 0:
            raise ValueError("t_eval must be a non-empty 1D array")
        if np.any(outputs <= t0) or np.any(outputs > t_end) or np.any(
            np.diff(outputs) <= 0
        ):
            raise ValueError("t_eval must be increasing in (t0, t_end]")

        # numerical-health sentinels (absent when guards are off)
        monitor = (
            self._health if self._health is not None
            else default_monitor("ode.bdf")
        )
        probe = self._probe
        if probe is None and guard_enabled():
            probe = WrmsTrendProbe(where="ode.bdf")
        if monitor is not None:
            monitor.check_array(u0, "u0")

        t = t0
        u_nm1 = u0.copy()        # u_{n-1}
        u_nm2: Optional[np.ndarray] = None
        h_prev = 0.0
        h = self._initial_step(t0, u0, float(outputs[0]))
        h = max(h, self.opts.h_min)
        order = 1
        gamma_built = None
        lin_solve: Optional[LinSolveFn] = None

        out_times: List[float] = []
        out_states: List[np.ndarray] = []
        next_out = 0

        for _ in range(self.opts.max_steps):
            if next_out >= outputs.size:
                break
            target = float(outputs[next_out])
            h = min(h, target - t)
            h = max(h, self.opts.h_min)

            # --- BDF coefficients -------------------------------------
            if order == 1 or u_nm2 is None:
                alpha0, alpha1, alpha2 = 1.0, -1.0, 0.0
                k_order = 1
            else:
                rho = h / h_prev
                alpha0 = (1 + 2 * rho) / (1 + rho)
                alpha1 = -(1 + rho)
                alpha2 = rho * rho / (1 + rho)
                k_order = 2

            t_new = t + h
            # predictor: extrapolation through history
            if k_order == 1 or u_nm2 is None:
                u_pred = u_nm1.copy()
            else:
                rho = h / h_prev
                u_pred = (1 + rho) * u_nm1 - rho * u_nm2

            gamma = h / alpha0
            if (
                lin_solve is None
                or gamma_built is None
                or abs(gamma - gamma_built) > self.opts.gamma_drift * gamma_built
            ):
                lin_solve = self.make_lin_solver(gamma, t_new, u_pred)
                gamma_built = gamma
                self.stats.n_lin_setups += 1

            # --- Newton iteration -------------------------------------
            u_new = u_pred.copy()
            w = self._weights(u_nm1)
            converged = False
            for _newton in range(self.opts.max_newton):
                f = self.rhs(t_new, u_new)
                self.stats.n_rhs += 1
                self.stats.n_newton += 1
                hist = alpha0 * u_new + alpha1 * u_nm1
                if k_order == 2 and u_nm2 is not None:
                    hist += alpha2 * u_nm2
                g = self.mass_mult(hist) - h * f
                delta = lin_solve(-g / alpha0)
                u_new += delta
                if self._wrms(delta, w) < self.opts.newton_tol:
                    converged = True
                    break
            if not converged:
                self.stats.n_newton_fails += 1
                if probe is not None:
                    # a Newton failure is a rejected step: feed the
                    # stuck-integrator probe a finite err > 1
                    probe.observe(2.0, h, t, accepted=False)
                h = max(h * 0.25, self.opts.h_min)
                lin_solve = None  # force a fresh setup
                continue
            if monitor is not None:
                monitor.check_array(u_new, "BDF iterate",
                                    context={"t": t_new, "h": h})

            # --- local error estimate -----------------------------------
            est = (u_new - u_pred) / (k_order + 1.0)
            err = self._wrms(est, w)
            if err > 1.0:
                self.stats.n_err_fails += 1
                if probe is not None:
                    probe.observe(err, h, t, accepted=False)
                h = max(h * max(0.2, 0.9 * err ** (-1.0 / (k_order + 1))),
                        self.opts.h_min)
                if h <= self.opts.h_min and self.stats.n_err_fails > 50:
                    if monitor is not None or probe is not None:
                        raise StagnationError(
                            f"BDF step size underflow at t={t}: error "
                            "test keeps failing", where="ode.bdf",
                            context={"t": t, "h": h,
                                     "err_fails": self.stats.n_err_fails},
                        )
                    raise RuntimeError(
                        f"BDF step size underflow at t={t}: error test keeps failing"
                    )
                continue
            if probe is not None:
                probe.observe(err, h, t, accepted=True)

            # --- accept -------------------------------------------------
            self.stats.n_steps += 1
            u_nm2 = u_nm1
            u_nm1 = u_new
            h_prev = h
            t = t_new
            if order < self.opts.max_order:
                order += 1
            if abs(t - target) < 1e-12 * max(1.0, abs(target)):
                out_times.append(target)
                out_states.append(u_new.copy())
                next_out += 1
            # step growth
            factor = 0.9 * err ** (-1.0 / (k_order + 1)) if err > 0 else 2.0
            h = min(h * min(max(factor, 0.2), 2.5), self.opts.h_max)
        else:
            if monitor is not None or probe is not None:
                raise StagnationError(
                    f"max_steps={self.opts.max_steps} exceeded at t={t}",
                    where="ode.bdf",
                    context={"t": t, "max_steps": self.opts.max_steps},
                )
            raise RuntimeError(
                f"max_steps={self.opts.max_steps} exceeded at t={t}"
            )

        return np.array(out_times), np.array(out_states)
