"""Explicit adaptive Runge-Kutta (Bogacki-Shampine 3(2)).

The non-stiff companion to :mod:`repro.ode.bdf`: used by tests as an
independent reference and by examples for mildly stiff warm-up
problems.  Implements the embedded BS3(2) pair with standard
proportional step control.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

RhsFn = Callable[[float, np.ndarray], np.ndarray]


def erk_integrate(
    rhs: RhsFn,
    t0: float,
    u0: np.ndarray,
    t_end: float,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    h0: Optional[float] = None,
    max_steps: int = 200_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate ``du/dt = rhs(t, u)`` with BS3(2); returns (t, u(t_end)).

    Returns the full accepted-time history and states (one row per
    accepted step, ending exactly at ``t_end``).
    """
    if t_end <= t0:
        raise ValueError("t_end must exceed t0")
    if rtol <= 0 or atol <= 0:
        raise ValueError("tolerances must be positive")
    u = np.asarray(u0, dtype=np.float64).copy()
    t = t0
    h = h0 if h0 is not None else (t_end - t0) / 100.0
    times: List[float] = [t0]
    states: List[np.ndarray] = [u.copy()]
    k1 = rhs(t, u)
    for _ in range(max_steps):
        if t >= t_end:
            break
        h = min(h, t_end - t)
        k2 = rhs(t + 0.5 * h, u + 0.5 * h * k1)
        k3 = rhs(t + 0.75 * h, u + 0.75 * h * k2)
        u3 = u + h * (2.0 / 9.0 * k1 + 1.0 / 3.0 * k2 + 4.0 / 9.0 * k3)
        k4 = rhs(t + h, u3)
        # embedded 2nd-order solution for the error estimate
        u2 = u + h * (7.0 / 24.0 * k1 + 0.25 * k2 + 1.0 / 3.0 * k3 + 0.125 * k4)
        w = 1.0 / (rtol * np.maximum(np.abs(u), np.abs(u3)) + atol)
        err = float(np.sqrt(np.mean(((u3 - u2) * w) ** 2)))
        if err <= 1.0:
            t += h
            u = u3
            k1 = k4  # FSAL
            times.append(t)
            states.append(u.copy())
        factor = 0.9 * err ** (-1.0 / 3.0) if err > 0 else 2.0
        h *= min(max(factor, 0.2), 5.0)
    else:
        raise RuntimeError(f"max_steps={max_steps} exceeded at t={t}")
    return np.array(times), np.array(states)
